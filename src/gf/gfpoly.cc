#include "pbs/gf/gfpoly.h"

#include <cassert>

namespace pbs {

GFPoly GFPoly::Monomial(const GF2m& field, uint64_t c, int k) {
  if (c == 0) return Zero(field);
  std::vector<uint64_t> coeffs(k + 1, 0);
  coeffs[k] = c;
  return GFPoly(field, std::move(coeffs));
}

GFPoly GFPoly::Add(const GFPoly& other) const {
  std::vector<uint64_t> out(std::max(coeffs_.size(), other.coeffs_.size()), 0);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = coeff(static_cast<int>(i)) ^ other.coeff(static_cast<int>(i));
  }
  return GFPoly(field_, std::move(out));
}

GFPoly GFPoly::Mul(const GFPoly& other) const {
  if (IsZero() || other.IsZero()) return Zero(field_);
  std::vector<uint64_t> out(coeffs_.size() + other.coeffs_.size() - 1, 0);
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i] == 0) continue;
    for (size_t j = 0; j < other.coeffs_.size(); ++j) {
      if (other.coeffs_[j] == 0) continue;
      out[i + j] ^= field_.Mul(coeffs_[i], other.coeffs_[j]);
    }
  }
  return GFPoly(field_, std::move(out));
}

GFPoly GFPoly::MulScalar(uint64_t c) const {
  if (c == 0) return Zero(field_);
  std::vector<uint64_t> out(coeffs_);
  for (auto& v : out) v = field_.Mul(v, c);
  return GFPoly(field_, std::move(out));
}

GFPoly GFPoly::ShiftUp(int k) const {
  if (IsZero() || k == 0) return *this;
  std::vector<uint64_t> out(coeffs_.size() + k, 0);
  for (size_t i = 0; i < coeffs_.size(); ++i) out[i + k] = coeffs_[i];
  return GFPoly(field_, std::move(out));
}

std::pair<GFPoly, GFPoly> GFPoly::DivMod(const GFPoly& divisor) const {
  assert(!divisor.IsZero());
  if (degree() < divisor.degree()) return {Zero(field_), *this};
  std::vector<uint64_t> rem(coeffs_);
  std::vector<uint64_t> quot(degree() - divisor.degree() + 1, 0);
  const uint64_t lead_inv = field_.Inv(divisor.leading());
  for (int shift = degree() - divisor.degree(); shift >= 0; --shift) {
    uint64_t top = rem[shift + divisor.degree()];
    if (top == 0) continue;
    uint64_t factor = field_.Mul(top, lead_inv);
    quot[shift] = factor;
    for (int i = 0; i <= divisor.degree(); ++i) {
      rem[shift + i] ^= field_.Mul(factor, divisor.coeff(i));
    }
  }
  return {GFPoly(field_, std::move(quot)), GFPoly(field_, std::move(rem))};
}

GFPoly GFPoly::Gcd(const GFPoly& other) const {
  GFPoly a = *this;
  GFPoly b = other;
  while (!b.IsZero()) {
    GFPoly r = a.Mod(b);
    a = b;
    b = r;
  }
  if (a.IsZero()) return a;
  return a.MakeMonic();
}

GFPoly GFPoly::Derivative() const {
  if (degree() < 1) return Zero(field_);
  std::vector<uint64_t> out(coeffs_.size() - 1, 0);
  // d/dx sum c_i x^i = sum (i mod 2) c_i x^(i-1) in characteristic 2.
  for (size_t i = 1; i < coeffs_.size(); i += 2) {
    out[i - 1] = coeffs_[i];
  }
  return GFPoly(field_, std::move(out));
}

uint64_t GFPoly::Eval(uint64_t x) const {
  uint64_t acc = 0;
  for (size_t i = coeffs_.size(); i-- > 0;) {
    acc = field_.Mul(acc, x) ^ coeffs_[i];
  }
  return acc;
}

GFPoly GFPoly::MakeMonic() const {
  assert(!IsZero());
  if (leading() == 1) return *this;
  return MulScalar(field_.Inv(leading()));
}

}  // namespace pbs
