#include "pbs/gf/roots.h"

#include <cassert>

#include "pbs/common/rng.h"

namespace pbs {

namespace {

// Computes the trace map polynomial Tr_beta(x) = sum_{i=0}^{m-1} (beta x)^(2^i)
// reduced mod f, as a polynomial of degree < deg(f).
GFPoly TracePolyMod(const GFPoly& f, uint64_t beta) {
  const GF2m& field = f.field();
  GFPoly term = GFPoly::Monomial(field, beta, 1).Mod(f);  // beta * x
  GFPoly acc = term;
  for (int i = 1; i < field.m(); ++i) {
    term = term.SqrMod(f);
    acc = acc.Add(term);
  }
  return acc;
}

// Recursively splits a monic squarefree polynomial that is known to be a
// product of distinct linear factors.
bool TraceSplit(const GFPoly& f, Xoshiro256& rng,
                std::vector<uint64_t>* roots, int depth) {
  const GF2m& field = f.field();
  if (f.degree() <= 0) return true;
  if (f.degree() == 1) {
    // f = x + c (monic): root is c.
    roots->push_back(f.coeff(0));
    return true;
  }
  if (depth > 200) return false;  // Defensive: should never trigger.

  // Try random beta until gcd(f, Tr_beta) is a proper factor. For a product
  // of distinct linear factors, a uniformly random beta separates any fixed
  // pair of roots with probability 1/2, so a few tries suffice.
  for (int attempt = 0; attempt < 64; ++attempt) {
    uint64_t beta = rng.NextBounded(field.order()) + 1;
    GFPoly tr = TracePolyMod(f, beta);
    // Tr_beta(x) and Tr_beta(x) + 1 partition the roots; gcd with either
    // side yields the split. gcd(f, tr) collects roots with trace 0.
    GFPoly g = f.Gcd(tr);
    if (g.degree() > 0 && g.degree() < f.degree()) {
      GFPoly h = f.Div(g);
      return TraceSplit(g, rng, roots, depth + 1) &&
             TraceSplit(h.MakeMonic(), rng, roots, depth + 1);
    }
  }
  return false;
}

// Checks that f divides x^(2^m) - x, i.e. f is a product of distinct linear
// factors over GF(2^m). Costs m modular squarings of degree < deg(f).
bool SplitsIntoDistinctLinearFactors(const GFPoly& f) {
  const GF2m& field = f.field();
  GFPoly x = GFPoly::Monomial(field, 1, 1);
  GFPoly h = x.Mod(f);
  for (int i = 0; i < field.m(); ++i) {
    h = h.SqrMod(f);
  }
  return h == x.Mod(f);
}

}  // namespace

std::vector<uint64_t> ChienSearch(const GFPoly& f) {
  const GF2m& field = f.field();
  assert(field.order() < (uint64_t{1} << 20));
  std::vector<uint64_t> roots;
  for (uint64_t x = 1; x <= field.order(); ++x) {
    if (f.Eval(x) == 0) roots.push_back(x);
  }
  return roots;
}

int ChienSearchInto(const GF2m& field, Span<const uint64_t> coeffs,
                    Span<uint64_t> out) {
  assert(field.order() < (uint64_t{1} << 20));
  // The zero polynomial vanishes everywhere; writing its "roots" would
  // overrun any out span, so reject it explicitly (the degree-based size
  // precondition below is vacuous for it).
  if (PolyDegree(coeffs) < 0) return 0;
  assert(static_cast<int>(out.size()) >= PolyDegree(coeffs));
  int count = 0;
  for (uint64_t x = 1; x <= field.order(); ++x) {
    if (PolyEval(field, coeffs, x) == 0) out[count++] = x;
  }
  return count;
}

int FindDistinctNonzeroRootsWs(const GF2m& field, Span<const uint64_t> coeffs,
                               Workspace& ws, Span<uint64_t> out,
                               uint64_t seed) {
  const int degree = PolyDegree(coeffs);
  if (degree < 0) return -1;
  if (degree == 0) return 0;
  if (coeffs[0] == 0) return -1;  // Root at zero: miscorrected decode.

  (void)ws;  // The Chien path needs no scratch beyond `out` itself.
  if (field.order() < kChienThreshold) {
    // Evaluate only the meaningful prefix: trailing zeros past the degree
    // would cost Horner steps without changing the result.
    const int count = ChienSearchInto(
        field, coeffs.first(static_cast<size_t>(degree) + 1), out);
    if (count != degree) return -1;
    return count;
  }

  // Large field (PinSketch universe): the trace-splitting path allocates;
  // it sits outside the PBS parity-bitmap hot path.
  GFPoly f(field, std::vector<uint64_t>(
                      coeffs.data(),
                      coeffs.data() + static_cast<size_t>(degree) + 1));
  auto roots = FindDistinctNonzeroRoots(f, seed);
  if (!roots.has_value()) return -1;
  assert(roots->size() <= out.size());
  for (size_t i = 0; i < roots->size(); ++i) out[i] = (*roots)[i];
  return static_cast<int>(roots->size());
}

std::optional<std::vector<uint64_t>> FindDistinctNonzeroRoots(const GFPoly& f,
                                                              uint64_t seed) {
  if (f.IsZero()) return std::nullopt;
  if (f.degree() == 0) return std::vector<uint64_t>{};
  const GF2m& field = f.field();

  // A root at zero means the constant term vanishes; error locators never
  // have one, and its presence signals a miscorrected decode.
  if (f.coeff(0) == 0) return std::nullopt;

  if (field.order() < kChienThreshold) {
    std::vector<uint64_t> roots = ChienSearch(f);
    if (static_cast<int>(roots.size()) != f.degree()) return std::nullopt;
    return roots;
  }

  // Large field: verify squarefreeness and full splitting first; both are
  // necessary for trace splitting to terminate with deg(f) roots.
  GFPoly monic = f.MakeMonic();
  GFPoly deriv = monic.Derivative();
  if (deriv.IsZero()) return std::nullopt;  // f is a square (char 2).
  if (monic.Gcd(deriv).degree() != 0) return std::nullopt;
  if (!SplitsIntoDistinctLinearFactors(monic)) return std::nullopt;

  std::vector<uint64_t> roots;
  roots.reserve(monic.degree());
  Xoshiro256 rng(seed);
  if (!TraceSplit(monic, rng, &roots, 0)) return std::nullopt;
  if (static_cast<int>(roots.size()) != f.degree()) return std::nullopt;
  for (uint64_t r : roots) {
    if (r == 0) return std::nullopt;
  }
  return roots;
}

}  // namespace pbs
