#include "pbs/gf/roots.h"

#include <cassert>

#include "pbs/common/cpu_features.h"
#include "pbs/common/rng.h"

// The cross-group batch Chien kernel gathers four lanes' worth of antilog
// entries per term slot with VPGATHERQQ, so it is AVX2-only; it is compiled
// with a per-function target attribute and called only after cpu::HasAvx2()
// confirmed support. PBS_DISABLE_SIMD compiles it out, and AArch64 (no
// gather instruction in NEON) always uses the scalar per-polynomial kernel,
// which the batched API degrades to bit-identically.
#if !defined(PBS_DISABLE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define PBS_HAVE_AVX2_CHIEN_KERNEL 1
#endif

namespace pbs {

namespace {

// Computes the trace map polynomial Tr_beta(x) = sum_{i=0}^{m-1} (beta x)^(2^i)
// reduced mod f, as a polynomial of degree < deg(f).
GFPoly TracePolyMod(const GFPoly& f, uint64_t beta) {
  const GF2m& field = f.field();
  GFPoly term = GFPoly::Monomial(field, beta, 1).Mod(f);  // beta * x
  GFPoly acc = term;
  for (int i = 1; i < field.m(); ++i) {
    term = term.SqrMod(f);
    acc = acc.Add(term);
  }
  return acc;
}

// Recursively splits a monic squarefree polynomial that is known to be a
// product of distinct linear factors.
bool TraceSplit(const GFPoly& f, Xoshiro256& rng,
                std::vector<uint64_t>* roots, int depth) {
  const GF2m& field = f.field();
  if (f.degree() <= 0) return true;
  if (f.degree() == 1) {
    // f = x + c (monic): root is c.
    roots->push_back(f.coeff(0));
    return true;
  }
  if (depth > 200) return false;  // Defensive: should never trigger.

  // Try random beta until gcd(f, Tr_beta) is a proper factor. For a product
  // of distinct linear factors, a uniformly random beta separates any fixed
  // pair of roots with probability 1/2, so a few tries suffice.
  for (int attempt = 0; attempt < 64; ++attempt) {
    uint64_t beta = rng.NextBounded(field.order()) + 1;
    GFPoly tr = TracePolyMod(f, beta);
    // Tr_beta(x) and Tr_beta(x) + 1 partition the roots; gcd with either
    // side yields the split. gcd(f, tr) collects roots with trace 0.
    GFPoly g = f.Gcd(tr);
    if (g.degree() > 0 && g.degree() < f.degree()) {
      GFPoly h = f.Div(g);
      return TraceSplit(g, rng, roots, depth + 1) &&
             TraceSplit(h.MakeMonic(), rng, roots, depth + 1);
    }
  }
  return false;
}

// Checks that f divides x^(2^m) - x, i.e. f is a product of distinct linear
// factors over GF(2^m). Costs m modular squarings of degree < deg(f).
bool SplitsIntoDistinctLinearFactors(const GFPoly& f) {
  const GF2m& field = f.field();
  GFPoly x = GFPoly::Monomial(field, 1, 1);
  GFPoly h = x.Mod(f);
  for (int i = 0; i < field.m(); ++i) {
    h = h.SqrMod(f);
  }
  return h == x.Mod(f);
}

}  // namespace

std::vector<uint64_t> ChienSearch(const GFPoly& f) {
  const GF2m& field = f.field();
  assert(field.order() < (uint64_t{1} << 20));
  const int degree = f.degree();
  std::vector<uint64_t> roots;
  for (uint64_t x = 1; x <= field.order(); ++x) {
    if (f.Eval(x) == 0) {
      roots.push_back(x);
      // A degree-d polynomial has at most d roots: nothing left to find.
      if (static_cast<int>(roots.size()) == degree) break;
    }
  }
  return roots;
}

int ChienSearchInto(const GF2m& field, Span<const uint64_t> coeffs,
                    Span<uint64_t> out) {
  assert(field.order() < (uint64_t{1} << 20));
  // The zero polynomial vanishes everywhere; writing its "roots" would
  // overrun any out span, so reject it explicitly (the degree-based size
  // precondition below is vacuous for it).
  const int degree = PolyDegree(coeffs);
  if (degree < 0) return 0;
  assert(static_cast<int>(out.size()) >= degree);
  int count = 0;
  for (uint64_t x = 1; x <= field.order(); ++x) {
    if (PolyEval(field, coeffs, x) == 0) {
      out[count++] = x;
      if (count == degree) break;  // At most deg roots exist.
    }
  }
  return count;
}

int ChienSearchIncremental(const GF2m& field, Span<const uint64_t> coeffs,
                           Workspace& ws, Span<uint64_t> out) {
  assert(field.has_tables());
  const int degree = PolyDegree(coeffs);
  if (degree < 0) return 0;
  assert(static_cast<int>(out.size()) >= degree);
  const uint64_t c0 = coeffs[0];
  if (degree == 0) return 0;
  if (degree == 1) {
    // c1 x + c0: the only nonzero root candidate is c0 / c1 (zero -- i.e.
    // c0 == 0 -- is outside the scanned domain, matching the exhaustive
    // search, which never visits x = 0).
    if (c0 == 0) return 0;
    out[0] = field.Div(c0, coeffs[1]);
    return 1;
  }

  const uint64_t order = field.order();
  // One running term per nonzero coefficient c_j (j >= 1): its log starts
  // at log(c_j) (the value at x = g^0 = 1) and advances by the stride j
  // per point, since moving from g^i to g^(i+1) multiplies c_j x^j by g^j.
  auto logs = ws.Take<uint32_t>(degree);
  auto strides = ws.Take<uint32_t>(degree);
  auto strides2 = ws.Take<uint32_t>(degree);  // 2j mod order, pair advance.
  int terms = 0;
  for (int j = 1; j <= degree; ++j) {
    if (coeffs[j] != 0) {
      logs[terms] = field.Log(coeffs[j]);
      // j mod order keeps every log sum below 2*order (one conditional
      // subtract suffices even for degrees at or above the group order).
      const uint32_t stride =
          static_cast<uint32_t>(static_cast<uint64_t>(j) % order);
      strides[terms] = stride;
      const uint32_t twice = 2 * stride;
      strides2[terms] =
          twice >= order ? twice - static_cast<uint32_t>(order) : twice;
      ++terms;
    }
  }

  uint32_t* ls = logs.data();
  const uint32_t* js = strides.data();
  const uint32_t* j2s = strides2.data();
  // Two points per fused pass: both lookups go through the *doubled*
  // antilog table (ls[k] and ls[k] + js[k] are both below 2*order, so
  // neither needs the wrap applied first), and the stored log advances by
  // 2j mod order in one step -- halving the ls[] store/reload and wrap
  // traffic. Everything is raw-pointer and branch-free inside the term
  // loop; the per-term work is one load + a few ALU ops with no
  // dependency chain across terms, where Horner pays log/exp/log
  // dependent lookups per coefficient.
  const uint64_t* exp = field.exp_data();
  const uint32_t order32 = static_cast<uint32_t>(order);
  int count = 0;
  uint64_t i = 0;
  for (; i + 1 < order && count < degree; i += 2) {
    uint64_t acc0 = c0;
    uint64_t acc1 = c0;
    for (int k = 0; k < terms; ++k) {
      const uint32_t l = ls[k];
      acc0 ^= exp[l];
      acc1 ^= exp[l + js[k]];
      const uint32_t next = l + j2s[k];
      ls[k] = next >= order32 ? next - order32 : next;
    }
    if (acc0 == 0) out[count++] = exp[i];  // The points: x = g^i, g^(i+1).
    if (acc1 == 0 && count < degree) out[count++] = exp[i + 1];
  }
  if (count < degree && i < order) {
    // Odd group order: the last point has no pair partner.
    uint64_t acc = c0;
    for (int k = 0; k < terms; ++k) acc ^= exp[ls[k]];
    if (acc == 0) out[count++] = exp[i];
  }
  return count;
}

void ChienSearchBatchPortable(const GF2m& field, Span<ChienBatchPoly> polys,
                              Workspace& ws) {
  for (ChienBatchPoly& p : polys) {
    p.count = ChienSearchIncremental(field, p.coeffs, ws, p.out);
  }
}

#if defined(PBS_HAVE_AVX2_CHIEN_KERNEL)

namespace {

// Four locator polynomials (degree >= 2 each) advanced in lock-step, one
// per 64-bit lane. The data layout is term-major: slot k holds the
// lane-packed running logs and strides (as 32-bit lanes -- logs stay below
// 2*order < 2^17) of the k-th nonzero coefficient of each polynomial.
// Lanes past a polynomial's term count are padded with a zero log and zero
// stride, so they contribute exp[0] = 1 to every accumulator; the padding
// is cancelled up front by flipping the constant term's low bit once per
// padded slot, which keeps the gathers unmasked (VPGATHERQQ's masked form
// adds a merge dependency on the destination). Each iteration evaluates
// FOUR points x = g^i .. g^(i+3): two unwrapped doubled-table gathers off
// the current log (exp[l], exp[l+j]) and two off the once-advanced log
// (exp[l'], exp[l'+j] with l' = l+2j mod order), amortizing the wrap and
// the log store over four points. Root order and counts match
// ChienSearchIncremental bit-for-bit.
__attribute__((target("avx2"))) void ChienBatch4Avx2(
    const GF2m& field, ChienBatchPoly* const* polys, Workspace& ws) {
  constexpr int kLanes = kChienBatchLanes;
  const uint64_t order = field.order();
  const uint64_t* exp = field.exp_data();

  int degree[kLanes];
  int found[kLanes] = {0, 0, 0, 0};
  uint64_t c0[kLanes];
  uint64_t c0_padded[kLanes];
  int max_terms = 0;
  for (int l = 0; l < kLanes; ++l) {
    degree[l] = PolyDegree(polys[l]->coeffs);
    assert(degree[l] >= 2);
    assert(static_cast<int>(polys[l]->out.size()) >= degree[l]);
    c0[l] = polys[l]->coeffs[0];
    max_terms = degree[l] > max_terms ? degree[l] : max_terms;
  }

  auto logs = ws.Take<uint32_t>(static_cast<size_t>(max_terms) * kLanes);
  auto js = ws.Take<uint32_t>(static_cast<size_t>(max_terms) * kLanes);
  auto j2s = ws.Take<uint32_t>(static_cast<size_t>(max_terms) * kLanes);
  int terms[kLanes];
  for (int l = 0; l < kLanes; ++l) {
    const Span<const uint64_t>& coeffs = polys[l]->coeffs;
    int k = 0;
    for (int j = 1; j <= degree[l]; ++j) {
      if (coeffs[j] != 0) {
        const size_t slot = static_cast<size_t>(k) * kLanes + l;
        logs[slot] = field.Log(coeffs[j]);
        const uint32_t stride =
            static_cast<uint32_t>(static_cast<uint64_t>(j) % order);
        js[slot] = stride;
        const uint32_t twice = 2 * stride;
        j2s[slot] =
            twice >= order ? twice - static_cast<uint32_t>(order) : twice;
        ++k;
      }
    }
    terms[l] = k;
    // Padded slots keep log = stride = 0 (Take zero-fills): a constant
    // exp[0] = 1 per point, cancelled here once per padded slot.
    c0_padded[l] = c0[l] ^ static_cast<uint64_t>((max_terms - k) & 1);
  }

  const __m256i zero = _mm256_setzero_si256();
  const __m128i orderv =
      _mm_set1_epi32(static_cast<int>(static_cast<uint32_t>(order)));
  const __m128i order_m1 =
      _mm_set1_epi32(static_cast<int>(static_cast<uint32_t>(order) - 1));
  const __m256i c0v =
      _mm256_setr_epi64x(static_cast<long long>(c0_padded[0]),
                         static_cast<long long>(c0_padded[1]),
                         static_cast<long long>(c0_padded[2]),
                         static_cast<long long>(c0_padded[3]));
  const long long* base = reinterpret_cast<const long long*>(exp);
  uint32_t* logs_p = logs.data();
  const uint32_t* js_p = js.data();
  const uint32_t* j2s_p = j2s.data();

  int remaining = degree[0] + degree[1] + degree[2] + degree[3];
  uint64_t i = 0;
  for (; i + 3 < order && remaining > 0; i += 4) {
    __m256i acc0 = c0v;
    __m256i acc1 = c0v;
    __m256i acc2 = c0v;
    __m256i acc3 = c0v;
    for (int k = 0; k < max_terms; ++k) {
      const __m128i idx = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(logs_p + k * kLanes));
      const __m128i jv = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(js_p + k * kLanes));
      // Points i and i+1 read the doubled table at l and l+j (both below
      // 2*order, no wrap needed first).
      acc0 = _mm256_xor_si256(acc0, _mm256_i32gather_epi64(base, idx, 8));
      acc1 = _mm256_xor_si256(
          acc1, _mm256_i32gather_epi64(base, _mm_add_epi32(idx, jv), 8));
      // One wrapped advance by 2j mod order covers points i+2 and i+3; the
      // signed 32-bit compare is exact (everything is below 2^17).
      __m128i next = _mm_add_epi32(
          idx, _mm_loadu_si128(
                   reinterpret_cast<const __m128i*>(j2s_p + k * kLanes)));
      next =
          _mm_sub_epi32(next, _mm_and_si128(_mm_cmpgt_epi32(next, order_m1),
                                            orderv));
      acc2 = _mm256_xor_si256(acc2, _mm256_i32gather_epi64(base, next, 8));
      acc3 = _mm256_xor_si256(
          acc3, _mm256_i32gather_epi64(base, _mm_add_epi32(next, jv), 8));
      // The stored log advances by 4j mod order: one more 2j step.
      __m128i next2 = _mm_add_epi32(
          next, _mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(j2s_p + k * kLanes)));
      next2 =
          _mm_sub_epi32(next2, _mm_and_si128(_mm_cmpgt_epi32(next2, order_m1),
                                             orderv));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(logs_p + k * kLanes),
                       next2);
    }
    // Root hits are rare (at most deg per lane over the whole scan), so
    // one branch covers the common all-nonzero case.
    const int z0 = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(acc0, zero)));
    const int z1 = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(acc1, zero)));
    const int z2 = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(acc2, zero)));
    const int z3 = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(acc3, zero)));
    if ((z0 | z1 | z2 | z3) != 0) {
      for (int l = 0; l < kLanes; ++l) {
        const int hits = ((z0 >> l) & 1) | (((z1 >> l) & 1) << 1) |
                         (((z2 >> l) & 1) << 2) | (((z3 >> l) & 1) << 3);
        for (int p = 0; p < 4; ++p) {
          if (((hits >> p) & 1) != 0 && found[l] < degree[l]) {
            polys[l]->out[found[l]++] = exp[i + static_cast<uint64_t>(p)];
            --remaining;
          }
        }
      }
    }
  }
  // Tail points (order mod 4 of them, order = 2^m - 1 is never a multiple
  // of 4): evaluate scalar per lane from the staged running logs, which
  // advance by the one-point stride j here.
  for (; i < order && remaining > 0; ++i) {
    for (int l = 0; l < kLanes; ++l) {
      uint64_t acc = c0[l];
      for (int k = 0; k < terms[l]; ++k) {
        acc ^= exp[logs_p[static_cast<size_t>(k) * kLanes + l]];
      }
      if (acc == 0 && found[l] < degree[l]) {
        polys[l]->out[found[l]++] = exp[i];
        --remaining;
      }
    }
    for (int l = 0; l < kLanes; ++l) {
      for (int k = 0; k < terms[l]; ++k) {
        const size_t slot = static_cast<size_t>(k) * kLanes + l;
        const uint32_t next = logs_p[slot] + js_p[slot];
        logs_p[slot] =
            next >= order ? next - static_cast<uint32_t>(order) : next;
      }
    }
  }
  for (int l = 0; l < kLanes; ++l) polys[l]->count = found[l];
}

}  // namespace

#endif  // PBS_HAVE_AVX2_CHIEN_KERNEL

void ChienSearchBatch(const GF2m& field, Span<ChienBatchPoly> polys,
                      Workspace& ws) {
  assert(field.has_tables());
#if defined(PBS_HAVE_AVX2_CHIEN_KERNEL)
  static const bool use_hw = cpu::HasAvx2();
  if (use_hw) {
    // Quads of degree >= 2 locators run in lanes; degree <= 1 polynomials
    // (solved directly by the scalar kernel) and the ragged tail fall back
    // to ChienSearchIncremental, which the lane kernel matches bit-for-bit.
    ChienBatchPoly* lanes[kChienBatchLanes];
    int staged = 0;
    for (ChienBatchPoly& p : polys) {
      if (PolyDegree(p.coeffs) >= 2) {
        lanes[staged++] = &p;
        if (staged == kChienBatchLanes) {
          ChienBatch4Avx2(field, lanes, ws);
          staged = 0;
        }
      } else {
        p.count = ChienSearchIncremental(field, p.coeffs, ws, p.out);
      }
    }
    for (int l = 0; l < staged; ++l) {
      lanes[l]->count =
          ChienSearchIncremental(field, lanes[l]->coeffs, ws, lanes[l]->out);
    }
    return;
  }
#endif
  ChienSearchBatchPortable(field, polys, ws);
}

int FindDistinctNonzeroRootsWs(const GF2m& field, Span<const uint64_t> coeffs,
                               Workspace& ws, Span<uint64_t> out,
                               uint64_t seed) {
  const int degree = PolyDegree(coeffs);
  if (degree < 0) return -1;
  if (degree == 0) return 0;
  if (coeffs[0] == 0) return -1;  // Root at zero: miscorrected decode.

  if (field.order() < kChienThreshold) {
    // Every Chien-sized field (order < 2^13 <= 2^kMaxTableBits) has its
    // log/antilog tables built, so the incremental kernel always applies.
    const int count = ChienSearchIncremental(
        field, coeffs.first(static_cast<size_t>(degree) + 1), ws, out);
    if (count != degree) return -1;
    return count;
  }

  // Large field (PinSketch universe): the trace-splitting path allocates;
  // it sits outside the PBS parity-bitmap hot path.
  GFPoly f(field, std::vector<uint64_t>(
                      coeffs.data(),
                      coeffs.data() + static_cast<size_t>(degree) + 1));
  auto roots = FindDistinctNonzeroRoots(f, seed);
  if (!roots.has_value()) return -1;
  assert(roots->size() <= out.size());
  for (size_t i = 0; i < roots->size(); ++i) out[i] = (*roots)[i];
  return static_cast<int>(roots->size());
}

std::optional<std::vector<uint64_t>> FindDistinctNonzeroRoots(const GFPoly& f,
                                                              uint64_t seed) {
  if (f.IsZero()) return std::nullopt;
  if (f.degree() == 0) return std::vector<uint64_t>{};
  const GF2m& field = f.field();

  // A root at zero means the constant term vanishes; error locators never
  // have one, and its presence signals a miscorrected decode.
  if (f.coeff(0) == 0) return std::nullopt;

  if (field.order() < kChienThreshold) {
    std::vector<uint64_t> roots = ChienSearch(f);
    if (static_cast<int>(roots.size()) != f.degree()) return std::nullopt;
    return roots;
  }

  // Large field: verify squarefreeness and full splitting first; both are
  // necessary for trace splitting to terminate with deg(f) roots.
  GFPoly monic = f.MakeMonic();
  GFPoly deriv = monic.Derivative();
  if (deriv.IsZero()) return std::nullopt;  // f is a square (char 2).
  if (monic.Gcd(deriv).degree() != 0) return std::nullopt;
  if (!SplitsIntoDistinctLinearFactors(monic)) return std::nullopt;

  std::vector<uint64_t> roots;
  roots.reserve(monic.degree());
  Xoshiro256 rng(seed);
  if (!TraceSplit(monic, rng, &roots, 0)) return std::nullopt;
  if (static_cast<int>(roots.size()) != f.degree()) return std::nullopt;
  for (uint64_t r : roots) {
    if (r == 0) return std::nullopt;
  }
  return roots;
}

}  // namespace pbs
