#include "pbs/gf/roots.h"

#include <cassert>

#include "pbs/common/rng.h"

namespace pbs {

namespace {

// Computes the trace map polynomial Tr_beta(x) = sum_{i=0}^{m-1} (beta x)^(2^i)
// reduced mod f, as a polynomial of degree < deg(f).
GFPoly TracePolyMod(const GFPoly& f, uint64_t beta) {
  const GF2m& field = f.field();
  GFPoly term = GFPoly::Monomial(field, beta, 1).Mod(f);  // beta * x
  GFPoly acc = term;
  for (int i = 1; i < field.m(); ++i) {
    term = term.SqrMod(f);
    acc = acc.Add(term);
  }
  return acc;
}

// Recursively splits a monic squarefree polynomial that is known to be a
// product of distinct linear factors.
bool TraceSplit(const GFPoly& f, Xoshiro256& rng,
                std::vector<uint64_t>* roots, int depth) {
  const GF2m& field = f.field();
  if (f.degree() <= 0) return true;
  if (f.degree() == 1) {
    // f = x + c (monic): root is c.
    roots->push_back(f.coeff(0));
    return true;
  }
  if (depth > 200) return false;  // Defensive: should never trigger.

  // Try random beta until gcd(f, Tr_beta) is a proper factor. For a product
  // of distinct linear factors, a uniformly random beta separates any fixed
  // pair of roots with probability 1/2, so a few tries suffice.
  for (int attempt = 0; attempt < 64; ++attempt) {
    uint64_t beta = rng.NextBounded(field.order()) + 1;
    GFPoly tr = TracePolyMod(f, beta);
    // Tr_beta(x) and Tr_beta(x) + 1 partition the roots; gcd with either
    // side yields the split. gcd(f, tr) collects roots with trace 0.
    GFPoly g = f.Gcd(tr);
    if (g.degree() > 0 && g.degree() < f.degree()) {
      GFPoly h = f.Div(g);
      return TraceSplit(g, rng, roots, depth + 1) &&
             TraceSplit(h.MakeMonic(), rng, roots, depth + 1);
    }
  }
  return false;
}

// Checks that f divides x^(2^m) - x, i.e. f is a product of distinct linear
// factors over GF(2^m). Costs m modular squarings of degree < deg(f).
bool SplitsIntoDistinctLinearFactors(const GFPoly& f) {
  const GF2m& field = f.field();
  GFPoly x = GFPoly::Monomial(field, 1, 1);
  GFPoly h = x.Mod(f);
  for (int i = 0; i < field.m(); ++i) {
    h = h.SqrMod(f);
  }
  return h == x.Mod(f);
}

}  // namespace

std::vector<uint64_t> ChienSearch(const GFPoly& f) {
  const GF2m& field = f.field();
  assert(field.order() < (uint64_t{1} << 20));
  const int degree = f.degree();
  std::vector<uint64_t> roots;
  for (uint64_t x = 1; x <= field.order(); ++x) {
    if (f.Eval(x) == 0) {
      roots.push_back(x);
      // A degree-d polynomial has at most d roots: nothing left to find.
      if (static_cast<int>(roots.size()) == degree) break;
    }
  }
  return roots;
}

int ChienSearchInto(const GF2m& field, Span<const uint64_t> coeffs,
                    Span<uint64_t> out) {
  assert(field.order() < (uint64_t{1} << 20));
  // The zero polynomial vanishes everywhere; writing its "roots" would
  // overrun any out span, so reject it explicitly (the degree-based size
  // precondition below is vacuous for it).
  const int degree = PolyDegree(coeffs);
  if (degree < 0) return 0;
  assert(static_cast<int>(out.size()) >= degree);
  int count = 0;
  for (uint64_t x = 1; x <= field.order(); ++x) {
    if (PolyEval(field, coeffs, x) == 0) {
      out[count++] = x;
      if (count == degree) break;  // At most deg roots exist.
    }
  }
  return count;
}

int ChienSearchIncremental(const GF2m& field, Span<const uint64_t> coeffs,
                           Workspace& ws, Span<uint64_t> out) {
  assert(field.has_tables());
  const int degree = PolyDegree(coeffs);
  if (degree < 0) return 0;
  assert(static_cast<int>(out.size()) >= degree);
  const uint64_t c0 = coeffs[0];
  if (degree == 0) return 0;
  if (degree == 1) {
    // c1 x + c0: the only nonzero root candidate is c0 / c1 (zero -- i.e.
    // c0 == 0 -- is outside the scanned domain, matching the exhaustive
    // search, which never visits x = 0).
    if (c0 == 0) return 0;
    out[0] = field.Div(c0, coeffs[1]);
    return 1;
  }

  const uint64_t order = field.order();
  // One running term per nonzero coefficient c_j (j >= 1): its log starts
  // at log(c_j) (the value at x = g^0 = 1) and advances by the stride j
  // per point, since moving from g^i to g^(i+1) multiplies c_j x^j by g^j.
  auto logs = ws.Take<uint32_t>(degree);
  auto strides = ws.Take<uint32_t>(degree);
  auto strides2 = ws.Take<uint32_t>(degree);  // 2j mod order, pair advance.
  int terms = 0;
  for (int j = 1; j <= degree; ++j) {
    if (coeffs[j] != 0) {
      logs[terms] = field.Log(coeffs[j]);
      // j mod order keeps every log sum below 2*order (one conditional
      // subtract suffices even for degrees at or above the group order).
      const uint32_t stride =
          static_cast<uint32_t>(static_cast<uint64_t>(j) % order);
      strides[terms] = stride;
      const uint32_t twice = 2 * stride;
      strides2[terms] =
          twice >= order ? twice - static_cast<uint32_t>(order) : twice;
      ++terms;
    }
  }

  uint32_t* ls = logs.data();
  const uint32_t* js = strides.data();
  const uint32_t* j2s = strides2.data();
  // Two points per fused pass: both lookups go through the *doubled*
  // antilog table (ls[k] and ls[k] + js[k] are both below 2*order, so
  // neither needs the wrap applied first), and the stored log advances by
  // 2j mod order in one step -- halving the ls[] store/reload and wrap
  // traffic. Everything is raw-pointer and branch-free inside the term
  // loop; the per-term work is one load + a few ALU ops with no
  // dependency chain across terms, where Horner pays log/exp/log
  // dependent lookups per coefficient.
  const uint64_t* exp = field.exp_data();
  const uint32_t order32 = static_cast<uint32_t>(order);
  int count = 0;
  uint64_t i = 0;
  for (; i + 1 < order && count < degree; i += 2) {
    uint64_t acc0 = c0;
    uint64_t acc1 = c0;
    for (int k = 0; k < terms; ++k) {
      const uint32_t l = ls[k];
      acc0 ^= exp[l];
      acc1 ^= exp[l + js[k]];
      const uint32_t next = l + j2s[k];
      ls[k] = next >= order32 ? next - order32 : next;
    }
    if (acc0 == 0) out[count++] = exp[i];  // The points: x = g^i, g^(i+1).
    if (acc1 == 0 && count < degree) out[count++] = exp[i + 1];
  }
  if (count < degree && i < order) {
    // Odd group order: the last point has no pair partner.
    uint64_t acc = c0;
    for (int k = 0; k < terms; ++k) acc ^= exp[ls[k]];
    if (acc == 0) out[count++] = exp[i];
  }
  return count;
}

int FindDistinctNonzeroRootsWs(const GF2m& field, Span<const uint64_t> coeffs,
                               Workspace& ws, Span<uint64_t> out,
                               uint64_t seed) {
  const int degree = PolyDegree(coeffs);
  if (degree < 0) return -1;
  if (degree == 0) return 0;
  if (coeffs[0] == 0) return -1;  // Root at zero: miscorrected decode.

  if (field.order() < kChienThreshold) {
    // Every Chien-sized field (order < 2^13 <= 2^kMaxTableBits) has its
    // log/antilog tables built, so the incremental kernel always applies.
    const int count = ChienSearchIncremental(
        field, coeffs.first(static_cast<size_t>(degree) + 1), ws, out);
    if (count != degree) return -1;
    return count;
  }

  // Large field (PinSketch universe): the trace-splitting path allocates;
  // it sits outside the PBS parity-bitmap hot path.
  GFPoly f(field, std::vector<uint64_t>(
                      coeffs.data(),
                      coeffs.data() + static_cast<size_t>(degree) + 1));
  auto roots = FindDistinctNonzeroRoots(f, seed);
  if (!roots.has_value()) return -1;
  assert(roots->size() <= out.size());
  for (size_t i = 0; i < roots->size(); ++i) out[i] = (*roots)[i];
  return static_cast<int>(roots->size());
}

std::optional<std::vector<uint64_t>> FindDistinctNonzeroRoots(const GFPoly& f,
                                                              uint64_t seed) {
  if (f.IsZero()) return std::nullopt;
  if (f.degree() == 0) return std::vector<uint64_t>{};
  const GF2m& field = f.field();

  // A root at zero means the constant term vanishes; error locators never
  // have one, and its presence signals a miscorrected decode.
  if (f.coeff(0) == 0) return std::nullopt;

  if (field.order() < kChienThreshold) {
    std::vector<uint64_t> roots = ChienSearch(f);
    if (static_cast<int>(roots.size()) != f.degree()) return std::nullopt;
    return roots;
  }

  // Large field: verify squarefreeness and full splitting first; both are
  // necessary for trace splitting to terminate with deg(f) roots.
  GFPoly monic = f.MakeMonic();
  GFPoly deriv = monic.Derivative();
  if (deriv.IsZero()) return std::nullopt;  // f is a square (char 2).
  if (monic.Gcd(deriv).degree() != 0) return std::nullopt;
  if (!SplitsIntoDistinctLinearFactors(monic)) return std::nullopt;

  std::vector<uint64_t> roots;
  roots.reserve(monic.degree());
  Xoshiro256 rng(seed);
  if (!TraceSplit(monic, rng, &roots, 0)) return std::nullopt;
  if (static_cast<int>(roots.size()) != f.degree()) return std::nullopt;
  for (uint64_t r : roots) {
    if (r == 0) return std::nullopt;
  }
  return roots;
}

}  // namespace pbs
