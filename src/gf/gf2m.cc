#include "pbs/gf/gf2m.h"

#include <cassert>
#include <map>
#include <mutex>

namespace pbs {

GF2m::GF2m(int m) {
  assert(m >= 2 && m <= 63);
  static std::map<int, std::shared_ptr<const State>> cache;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(m);
  if (it != cache.end()) {
    state_ = it->second;
    return;
  }

  auto state = std::make_shared<State>();
  state->m = m;
  state->order = (uint64_t{1} << m) - 1;
  state->modulus = gf2x::FindIrreducible(m);

  if (m <= kMaxTableBits) {
    const uint64_t order = state->order;
    state->log.assign(order + 1, 0);
    state->exp.assign(2 * order, 0);
    // Find a generator g of the multiplicative group: iterate candidates and
    // check that powers of g enumerate all `order` nonzero elements.
    for (uint64_t g = 2; g <= order; ++g) {
      uint64_t v = 1;
      uint64_t count = 0;
      bool full_cycle = true;
      do {
        state->exp[count] = v;
        state->log[v] = static_cast<uint32_t>(count);
        v = gf2x::MulMod(v, g, state->modulus);
        ++count;
        if (count > order) {
          full_cycle = false;
          break;
        }
      } while (v != 1);
      if (full_cycle && count == order) break;
      // Not a generator; wipe and retry (log entries get overwritten).
    }
    for (uint64_t k = 0; k < order; ++k) {
      state->exp[order + k] = state->exp[k];
    }
  }

  cache[m] = state;
  state_ = state;
}

uint64_t GF2m::Inv(uint64_t a) const {
  assert(a != 0);
  if (!state_->log.empty()) {
    uint64_t l = state_->log[a];
    return state_->exp[l == 0 ? 0 : state_->order - l];
  }
  // Fermat: a^(2^m - 2).
  return Pow(a, state_->order - 1);
}

uint64_t GF2m::Pow(uint64_t a, uint64_t e) const {
  uint64_t result = 1;
  uint64_t base = a;
  while (e != 0) {
    if (e & 1) result = Mul(result, base);
    base = Sqr(base);
    e >>= 1;
  }
  return result;
}

}  // namespace pbs
