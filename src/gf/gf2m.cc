#include "pbs/gf/gf2m.h"

#include <cassert>
#include <map>
#include <mutex>

namespace pbs {

namespace {

// a^e mod f via square-and-multiply on the raw carry-less layer; used while
// building a field's tables (before the field object exists).
uint64_t PowMod(uint64_t a, uint64_t e, uint64_t f) {
  uint64_t result = 1;
  uint64_t base = a;
  while (e != 0) {
    if (e & 1) result = gf2x::MulMod(result, base, f);
    base = gf2x::MulMod(base, base, f);
    e >>= 1;
  }
  return result;
}

// Distinct prime factors of `x` by trial division (x <= 2^16 - 1 here, so
// this is a few dozen divisions). Returns the count.
int DistinctPrimeFactors(uint64_t x, uint64_t out[16]) {
  int count = 0;
  for (uint64_t p = 2; p * p <= x; ++p) {
    if (x % p == 0) {
      out[count++] = p;
      while (x % p == 0) x /= p;
    }
  }
  if (x > 1) out[count++] = x;
  return count;
}

}  // namespace

GF2m::GF2m(int m) {
  assert(m >= 2 && m <= 63);
  static std::map<int, std::shared_ptr<const State>> cache;
  static std::mutex mu;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(m);
    if (it != cache.end()) {
      state_ = it->second;
      return;
    }
  }

  // Build outside the lock: the 2^17-entry table construction is the
  // expensive part, and holding the global mutex through it would stall
  // every other thread's field lookup (including for different m). Two
  // threads may race to build the same field; the first insert wins and
  // the loser's state is simply dropped.
  auto state = std::make_shared<State>();
  state->m = m;
  state->order = (uint64_t{1} << m) - 1;
  state->modulus = gf2x::FindIrreducible(m);

  if (m <= kMaxTableBits) {
    const uint64_t order = state->order;
    const uint64_t modulus = state->modulus;
    state->log.assign(order + 1, 0);
    state->exp.assign(2 * order, 0);
    // Find a generator of the multiplicative group: g generates iff its
    // order is 2^m - 1, i.e. g^(order/p) != 1 for every prime p | order.
    // This O(#primes * m) test per candidate replaces the seed code's full
    // 2^m-step enumeration per failed candidate; the smallest passing g is
    // unchanged, so the tables (and everything keyed off them) are
    // bit-identical to before.
    uint64_t primes[16];
    const int num_primes = DistinctPrimeFactors(order, primes);
    uint64_t gen = 0;
    for (uint64_t g = 2; g <= order; ++g) {
      bool is_generator = true;
      for (int i = 0; i < num_primes && is_generator; ++i) {
        if (PowMod(g, order / primes[i], modulus) == 1) is_generator = false;
      }
      if (is_generator) {
        gen = g;
        break;
      }
    }
    assert(gen != 0);  // The multiplicative group of a field is cyclic.
    uint64_t v = 1;
    for (uint64_t k = 0; k < order; ++k) {
      state->exp[k] = v;
      state->log[v] = static_cast<uint32_t>(k);
      v = gf2x::MulMod(v, gen, modulus);
    }
    // Doubled tail: exp[log a + log b] never needs a modular reduction.
    for (uint64_t k = 0; k < order; ++k) {
      state->exp[order + k] = state->exp[k];
    }
  }

  std::lock_guard<std::mutex> lock(mu);
  auto [it, inserted] = cache.emplace(m, std::move(state));
  state_ = it->second;
}

uint64_t GF2m::Inv(uint64_t a) const {
  assert(a != 0);
  if (!state_->log.empty()) {
    uint64_t l = state_->log[a];
    return state_->exp[l == 0 ? 0 : state_->order - l];
  }
  // Fermat: a^(2^m - 2).
  return Pow(a, state_->order - 1);
}

uint64_t GF2m::Pow(uint64_t a, uint64_t e) const {
  uint64_t result = 1;
  uint64_t base = a;
  while (e != 0) {
    if (e & 1) result = Mul(result, base);
    base = Sqr(base);
    e >>= 1;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Log-domain batch kernels.
// ---------------------------------------------------------------------------

void GF2m::MulManyAccum(uint64_t c, Span<const uint64_t> src,
                        Span<uint64_t> dst) const {
  assert(dst.size() >= src.size());
  if (c == 0) return;
  const State& s = *state_;
  if (s.log.empty()) {
    for (size_t i = 0; i < src.size(); ++i) {
      if (src[i] != 0) dst[i] ^= gf2x::MulMod(c, src[i], s.modulus);
    }
    return;
  }
  const uint32_t lc = s.log[c];
  const uint32_t* log = s.log.data();
  const uint64_t* exp = s.exp.data();
  for (size_t i = 0; i < src.size(); ++i) {
    const uint64_t v = src[i];
    if (v != 0) dst[i] ^= exp[lc + log[v]];
  }
}

void GF2m::MulManyInto(uint64_t c, Span<const uint64_t> src,
                       Span<uint64_t> dst) const {
  assert(dst.size() >= src.size());
  if (c == 0) {
    for (size_t i = 0; i < src.size(); ++i) dst[i] = 0;
    return;
  }
  const State& s = *state_;
  if (s.log.empty()) {
    for (size_t i = 0; i < src.size(); ++i) {
      dst[i] = src[i] == 0 ? 0 : gf2x::MulMod(c, src[i], s.modulus);
    }
    return;
  }
  const uint32_t lc = s.log[c];
  const uint32_t* log = s.log.data();
  const uint64_t* exp = s.exp.data();
  for (size_t i = 0; i < src.size(); ++i) {
    const uint64_t v = src[i];
    dst[i] = v == 0 ? 0 : exp[lc + log[v]];
  }
}

uint64_t GF2m::Dot(Span<const uint64_t> a, Span<const uint64_t> b) const {
  assert(a.size() == b.size());
  const State& s = *state_;
  uint64_t acc = 0;
  if (s.log.empty()) {
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != 0 && b[i] != 0) acc ^= gf2x::MulMod(a[i], b[i], s.modulus);
    }
    return acc;
  }
  const uint32_t* log = s.log.data();
  const uint64_t* exp = s.exp.data();
  for (size_t i = 0; i < a.size(); ++i) {
    const uint64_t x = a[i], y = b[i];
    if (x != 0 && y != 0) acc ^= exp[log[x] + log[y]];
  }
  return acc;
}

uint64_t GF2m::DotRev(Span<const uint64_t> a, Span<const uint64_t> b) const {
  assert(a.size() == b.size());
  const State& s = *state_;
  const size_t n = a.size();
  uint64_t acc = 0;
  if (s.log.empty()) {
    for (size_t i = 0; i < n; ++i) {
      const uint64_t x = a[i], y = b[n - 1 - i];
      if (x != 0 && y != 0) acc ^= gf2x::MulMod(x, y, s.modulus);
    }
    return acc;
  }
  const uint32_t* log = s.log.data();
  const uint64_t* exp = s.exp.data();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t x = a[i], y = b[n - 1 - i];
    if (x != 0 && y != 0) acc ^= exp[log[x] + log[y]];
  }
  return acc;
}

void GF2m::PowTableInto(uint64_t a, Span<uint64_t> out) const {
  if (out.empty()) return;
  out[0] = 1;
  const State& s = *state_;
  if (a == 0) {
    for (size_t i = 1; i < out.size(); ++i) out[i] = 0;
    return;
  }
  if (s.log.empty()) {
    for (size_t i = 1; i < out.size(); ++i) {
      out[i] = gf2x::MulMod(out[i - 1], a, s.modulus);
    }
    return;
  }
  const uint64_t order = s.order;
  const uint64_t* exp = s.exp.data();
  const uint32_t step = s.log[a];
  uint64_t l = 0;
  for (size_t i = 1; i < out.size(); ++i) {
    l += step;
    if (l >= order) l -= order;
    out[i] = exp[l];
  }
}

void GF2m::OddPowerAccum(uint64_t x, Span<uint64_t> odd) const {
  assert(x != 0);
  const State& s = *state_;
  if (s.log.empty()) {
    // Accumulate x^1, x^3, ... via repeated multiplication by x^2.
    const uint64_t x2 = gf2x::SqrMod(x, s.modulus);
    uint64_t power = x;
    const size_t t = odd.size();
    for (size_t i = 0; i < t; ++i) {
      odd[i] ^= power;
      if (i + 1 < t) power = gf2x::MulMod(power, x2, s.modulus);
    }
    return;
  }
  const uint64_t order = s.order;
  const uint64_t* exp = s.exp.data();
  const uint64_t lx = s.log[x];
  // log(x^(2i+1)) walks by 2*log(x) mod order per term.
  uint64_t step = 2 * lx;
  if (step >= order) step -= order;
  uint64_t l = lx;
  for (size_t i = 0; i < odd.size(); ++i) {
    odd[i] ^= exp[l];
    l += step;
    if (l >= order) l -= order;
  }
}

}  // namespace pbs
