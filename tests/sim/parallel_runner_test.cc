#include <gtest/gtest.h>

#include "pbs/sim/runner.h"

namespace pbs {
namespace {

ExperimentConfig BaseConfig() {
  ExperimentConfig config;
  config.set_size = 2000;
  config.d = 40;
  config.instances = 12;
  config.seed = 314;
  return config;
}

TEST(ParallelRunner, ResultsIdenticalAcrossThreadCounts) {
  auto serial_cfg = BaseConfig();
  serial_cfg.threads = 1;
  auto parallel_cfg = BaseConfig();
  parallel_cfg.threads = 4;
  const RunStats serial = RunScheme("pbs", serial_cfg);
  const RunStats parallel = RunScheme("pbs", parallel_cfg);
  EXPECT_DOUBLE_EQ(serial.success_rate, parallel.success_rate);
  EXPECT_DOUBLE_EQ(serial.mean_bytes, parallel.mean_bytes);
  EXPECT_DOUBLE_EQ(serial.mean_rounds, parallel.mean_rounds);
}

TEST(ParallelRunner, CallbackSeesAllInstancesInDeterministicOrder) {
  auto config = BaseConfig();
  config.threads = 4;
  std::vector<size_t> bytes_parallel;
  RunSchemeWithCallback("pbs", config, [&](const InstanceOutcome& o) {
    bytes_parallel.push_back(o.bytes);
  });
  config.threads = 1;
  std::vector<size_t> bytes_serial;
  RunSchemeWithCallback("pbs", config, [&](const InstanceOutcome& o) {
    bytes_serial.push_back(o.bytes);
  });
  EXPECT_EQ(bytes_parallel, bytes_serial);
}

TEST(ParallelRunner, ZeroThreadsMeansHardwareConcurrency) {
  auto config = BaseConfig();
  config.threads = 0;
  config.instances = 4;
  const RunStats stats = RunScheme("ddigest", config);
  EXPECT_EQ(stats.instances, 4);
  EXPECT_GT(stats.mean_bytes, 0.0);
}

TEST(ParallelRunner, AllSchemesRunUnderParallelism) {
  for (const char* scheme : {"pbs", "ddigest", "graphene",
                             "pinsketch-wp"}) {
    auto config = BaseConfig();
    config.threads = 3;
    config.instances = 6;
    const RunStats stats = RunScheme(scheme, config);
    EXPECT_GE(stats.success_rate, 0.5) << scheme;
  }
}

}  // namespace
}  // namespace pbs
