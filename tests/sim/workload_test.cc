#include "pbs/sim/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

namespace pbs {
namespace {

TEST(Workload, SizesExact) {
  SetPair pair = GenerateSetPair(10000, 137, 32, 1);
  EXPECT_EQ(pair.a.size(), 10000u);
  EXPECT_EQ(pair.b.size(), 10000u - 137u);
  EXPECT_EQ(pair.truth_diff.size(), 137u);
}

TEST(Workload, BIsSubsetOfA) {
  SetPair pair = GenerateSetPair(5000, 50, 32, 2);
  std::unordered_set<uint64_t> a(pair.a.begin(), pair.a.end());
  for (uint64_t e : pair.b) EXPECT_TRUE(a.count(e));
}

TEST(Workload, TruthDiffIsAMinusB) {
  SetPair pair = GenerateSetPair(3000, 30, 32, 3);
  std::unordered_set<uint64_t> b(pair.b.begin(), pair.b.end());
  std::unordered_set<uint64_t> diff(pair.truth_diff.begin(),
                                    pair.truth_diff.end());
  EXPECT_EQ(diff.size(), 30u);
  for (uint64_t e : pair.truth_diff) EXPECT_FALSE(b.count(e));
  int missing = 0;
  for (uint64_t e : pair.a) {
    if (!b.count(e)) {
      EXPECT_TRUE(diff.count(e));
      ++missing;
    }
  }
  EXPECT_EQ(missing, 30);
}

TEST(Workload, ElementsDistinctNonzeroAndInRange) {
  SetPair pair = GenerateSetPair(20000, 10, 32, 4);
  std::unordered_set<uint64_t> seen;
  for (uint64_t e : pair.a) {
    EXPECT_NE(e, 0u);
    EXPECT_LE(e, 0xFFFFFFFFull);
    EXPECT_TRUE(seen.insert(e).second);
  }
}

TEST(Workload, DeterministicPerSeed) {
  SetPair p1 = GenerateSetPair(1000, 10, 32, 42);
  SetPair p2 = GenerateSetPair(1000, 10, 32, 42);
  EXPECT_EQ(p1.a, p2.a);
  EXPECT_EQ(p1.b, p2.b);
  SetPair p3 = GenerateSetPair(1000, 10, 32, 43);
  EXPECT_NE(p1.a, p3.a);
}

TEST(Workload, ZeroDifferenceMeansEqualSets) {
  SetPair pair = GenerateSetPair(500, 0, 32, 5);
  auto a = pair.a;
  auto b = pair.b;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Workload, SixtyFourBitUniverse) {
  SetPair pair = GenerateSetPair(1000, 10, 63, 6);
  bool any_large = false;
  for (uint64_t e : pair.a) {
    if (e > 0xFFFFFFFFull) any_large = true;
  }
  EXPECT_TRUE(any_large);
}

TEST(Workload, TwoSidedPairStructure) {
  SetPair pair = GenerateTwoSidedPair(1000, 17, 11, 32, 7);
  EXPECT_EQ(pair.a.size(), 1017u);
  EXPECT_EQ(pair.b.size(), 1011u);
  EXPECT_EQ(pair.truth_diff.size(), 28u);
  std::unordered_set<uint64_t> a(pair.a.begin(), pair.a.end());
  std::unordered_set<uint64_t> b(pair.b.begin(), pair.b.end());
  int a_only = 0, b_only = 0;
  for (uint64_t e : pair.truth_diff) {
    if (a.count(e)) {
      EXPECT_FALSE(b.count(e));
      ++a_only;
    } else {
      EXPECT_TRUE(b.count(e));
      ++b_only;
    }
  }
  EXPECT_EQ(a_only, 17);
  EXPECT_EQ(b_only, 11);
}

}  // namespace
}  // namespace pbs
