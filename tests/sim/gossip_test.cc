#include "pbs/sim/gossip.h"

#include <gtest/gtest.h>

namespace pbs {
namespace {

GossipConfig SmallConfig() {
  GossipConfig config;
  config.num_peers = 4;
  config.shared_elements = 2000;
  config.fresh_per_peer = 40;
  config.pbs.max_rounds = 5;
  config.seed = 7;
  return config;
}

TEST(Gossip, CompleteGraphConvergesInOneOrTwoSweeps) {
  const GossipResult result = RunGossip(SmallConfig());
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.sweeps, 2);
  EXPECT_EQ(result.final_set_size, 2000u + 4u * 40u);
}

TEST(Gossip, RingTopologyNeedsMoreSweeps) {
  GossipConfig ring = SmallConfig();
  ring.num_peers = 6;
  ring.topology = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}};
  const GossipResult result = RunGossip(ring);
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.sweeps, 1);
  EXPECT_EQ(result.final_set_size, 2000u + 6u * 40u);
}

TEST(Gossip, LineTopologyConverges) {
  GossipConfig line = SmallConfig();
  line.num_peers = 5;
  line.topology = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  const GossipResult result = RunGossip(line);
  EXPECT_TRUE(result.converged);
}

TEST(Gossip, ReconciliationBeatsNaiveInventoryExchange) {
  const GossipResult result = RunGossip(SmallConfig());
  ASSERT_TRUE(result.converged);
  EXPECT_LT(result.pbs_bytes, result.naive_bytes / 5);
}

TEST(Gossip, AlreadyConvergedNeedsNoSweeps) {
  GossipConfig config = SmallConfig();
  config.fresh_per_peer = 0;
  const GossipResult result = RunGossip(config);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.sweeps, 0);
  EXPECT_EQ(result.reconciliations, 0u);
}

TEST(Gossip, SweepCapReportsNonConvergence) {
  GossipConfig config = SmallConfig();
  config.max_sweeps = 0;
  const GossipResult result = RunGossip(config);
  EXPECT_FALSE(result.converged);
}

TEST(Gossip, DeterministicPerSeed) {
  const GossipResult a = RunGossip(SmallConfig());
  const GossipResult b = RunGossip(SmallConfig());
  EXPECT_EQ(a.pbs_bytes, b.pbs_bytes);
  EXPECT_EQ(a.sweeps, b.sweeps);
}

}  // namespace
}  // namespace pbs
