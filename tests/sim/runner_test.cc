#include "pbs/sim/runner.h"

#include <gtest/gtest.h>

namespace pbs {
namespace {

ExperimentConfig SmallConfig(Scheme /*scheme*/) {
  ExperimentConfig config;
  config.set_size = 3000;
  config.d = 50;
  config.instances = 6;
  config.seed = 77;
  return config;
}

class RunnerAllSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(RunnerAllSchemes, HighSuccessAndSaneMetrics) {
  const Scheme scheme = GetParam();
  const auto stats = RunScheme(scheme, SmallConfig(scheme));
  EXPECT_EQ(stats.instances, 6);
  EXPECT_GE(stats.success_rate, 0.5) << SchemeName(scheme);
  EXPECT_GT(stats.mean_bytes, 0.0);
  EXPECT_GE(stats.mean_encode_seconds, 0.0);
  EXPECT_GE(stats.mean_rounds, 1.0);
  EXPECT_GT(stats.overhead_ratio, 0.9) << SchemeName(scheme);
}

INSTANTIATE_TEST_SUITE_P(Schemes, RunnerAllSchemes,
                         ::testing::Values(Scheme::kPbs, Scheme::kPinSketch,
                                           Scheme::kDDigest, Scheme::kGraphene,
                                           Scheme::kPinSketchWp),
                         [](const auto& info) {
                           std::string n = SchemeName(info.param);
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return n;
                         });

TEST(Runner, OverheadOrderingMatchesPaper) {
  // PinSketch < PBS < D.Digest in communication overhead (Figure 1b).
  ExperimentConfig config;
  config.set_size = 4000;
  config.d = 100;
  config.instances = 5;
  const auto pin = RunScheme(Scheme::kPinSketch, config);
  const auto pbs = RunScheme(Scheme::kPbs, config);
  const auto dd = RunScheme(Scheme::kDDigest, config);
  EXPECT_LT(pin.mean_bytes, pbs.mean_bytes);
  EXPECT_LT(pbs.mean_bytes, dd.mean_bytes);
}

TEST(Runner, CallbackSeesEveryInstance) {
  ExperimentConfig config;
  config.set_size = 1000;
  config.d = 10;
  config.instances = 4;
  int calls = 0;
  RunSchemeWithCallback(Scheme::kPbs, config,
                        [&](const InstanceOutcome&) { ++calls; });
  EXPECT_EQ(calls, 4);
}

TEST(Runner, KnownDMatchesEstimatorPathOnSuccessRate) {
  ExperimentConfig config;
  config.set_size = 2000;
  config.d = 40;
  config.instances = 5;
  config.use_estimator = false;
  const auto stats = RunScheme(Scheme::kPbs, config);
  EXPECT_GE(stats.success_rate, 0.8);
}

TEST(Runner, SchemeNamesStable) {
  EXPECT_STREQ(SchemeName(Scheme::kPbs), "PBS");
  EXPECT_STREQ(SchemeName(Scheme::kGraphene), "Graphene");
  EXPECT_STREQ(SchemeName(Scheme::kPinSketchWp), "PinSketch/WP");
}

}  // namespace
}  // namespace pbs
