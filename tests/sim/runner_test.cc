#include "pbs/sim/runner.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace pbs {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.set_size = 3000;
  config.d = 50;
  config.instances = 6;
  config.seed = 77;
  return config;
}

class RunnerAllSchemes : public ::testing::TestWithParam<std::string> {};

TEST_P(RunnerAllSchemes, HighSuccessAndSaneMetrics) {
  const std::string scheme = GetParam();
  const auto stats = RunScheme(scheme, SmallConfig());
  EXPECT_EQ(stats.instances, 6);
  EXPECT_GE(stats.success_rate, 0.5) << scheme;
  EXPECT_GT(stats.mean_bytes, 0.0);
  EXPECT_GE(stats.mean_encode_seconds, 0.0);
  EXPECT_GE(stats.mean_rounds, 1.0);
  EXPECT_GT(stats.overhead_ratio, 0.9) << scheme;
}

INSTANTIATE_TEST_SUITE_P(Schemes, RunnerAllSchemes,
                         ::testing::Values("pbs", "pinsketch", "ddigest",
                                           "graphene", "pinsketch-wp"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return n;
                         });

TEST(Runner, OverheadOrderingMatchesPaper) {
  // PinSketch < PBS < D.Digest in communication overhead (Figure 1b).
  ExperimentConfig config;
  config.set_size = 4000;
  config.d = 100;
  config.instances = 5;
  const auto pin = RunScheme("pinsketch", config);
  const auto pbs = RunScheme("pbs", config);
  const auto dd = RunScheme("ddigest", config);
  EXPECT_LT(pin.mean_bytes, pbs.mean_bytes);
  EXPECT_LT(pbs.mean_bytes, dd.mean_bytes);
}

TEST(Runner, CallbackSeesEveryInstance) {
  ExperimentConfig config;
  config.set_size = 1000;
  config.d = 10;
  config.instances = 4;
  int calls = 0;
  RunSchemeWithCallback("pbs", config,
                        [&](const InstanceOutcome&) { ++calls; });
  EXPECT_EQ(calls, 4);
}

TEST(Runner, KnownDMatchesEstimatorPathOnSuccessRate) {
  ExperimentConfig config;
  config.set_size = 2000;
  config.d = 40;
  config.instances = 5;
  config.use_estimator = false;
  const auto stats = RunScheme("pbs", config);
  EXPECT_GE(stats.success_rate, 0.8);
}

TEST(Runner, UnknownSchemeThrowsWithRegisteredNames) {
  ExperimentConfig config;
  config.instances = 1;
  try {
    RunScheme("no-such-scheme", config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("pbs"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("graphene"), std::string::npos);
  }
}

TEST(Runner, SchemeDisplayNamesStable) {
  const auto& registry = SchemeRegistry::Instance();
  EXPECT_EQ(registry.DisplayName("pbs"), "PBS");
  EXPECT_EQ(registry.DisplayName("graphene"), "Graphene");
  EXPECT_EQ(registry.DisplayName("pinsketch-wp"), "PinSketch/WP");
}

}  // namespace
}  // namespace pbs
