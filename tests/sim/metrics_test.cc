#include "pbs/sim/metrics.h"

#include <gtest/gtest.h>

namespace pbs {
namespace {

TEST(ResultTable, RendersAlignedColumnsAndCsv) {
  ResultTable table({"d", "scheme", "bytes"});
  table.AddRow({"10", "PBS", "123"});
  table.AddRow({"100", "PinSketch", "4"});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("d    scheme     bytes"), std::string::npos);
  EXPECT_NE(s.find("# csv: d,scheme,bytes"), std::string::npos);
  EXPECT_NE(s.find("# csv: 100,PinSketch,4"), std::string::npos);
}

TEST(ResultTable, ShortRowsArePadded) {
  ResultTable table({"a", "b", "c"});
  table.AddRow({"1"});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("# csv: 1,,"), std::string::npos);
}

TEST(Formatting, Doubles) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(Formatting, Scientific) {
  EXPECT_EQ(FormatScientific(0.000361, 2), "3.61e-04");
}

TEST(Formatting, Bytes) {
  EXPECT_EQ(FormatBytes(100), "100B");
  EXPECT_EQ(FormatBytes(2048), "2.00KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.00MB");
}

}  // namespace
}  // namespace pbs
