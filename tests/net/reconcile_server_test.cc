// ReconcileServer: N event-loop shards serving many concurrent sessions.
//
// The stress test throws 32 concurrent clients — mixed schemes, mixed set
// sizes — at one server and checks every difference is recovered exactly
// and the per-shard counters aggregate correctly; it runs once on the
// classic single loop and once across 4 shards (the sharded leg is also
// the TSan stress for the acceptor→shard fd handoff and the cross-thread
// stats/Stop paths). Policy paths are pinned too: the max-sessions cap
// answers with a capacity ERROR frame the client can read, the idle
// timeout reaps a client that sent only a partial HELLO and went silent
// (and its slot is reused), and the poll fallback backend serves
// sessions identically to epoll.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "pbs/common/rng.h"
#include "pbs/core/element_store.h"
#include "pbs/core/session_engine.h"
#include "pbs/core/transport.h"
#include "pbs/core/wire_session.h"
#include "pbs/net/event_loop.h"
#include "pbs/net/reconcile_server.h"
#include "pbs/sim/workload.h"

namespace pbs {
namespace {

// Polls `predicate` against the server stats until it holds or ~2 s pass.
bool WaitForStats(const ReconcileServer& server,
                  const std::function<bool(const ServerStats&)>& predicate) {
  for (int i = 0; i < 400; ++i) {
    if (predicate(server.stats())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate(server.stats());
}

// The 32-client mixed-scheme stress, parameterized over the server's
// shard count and readiness backend so one body pins the single-loop
// classic, the 4-shard handoff path, and the poll fallback.
void RunMixedStress(int shards, EventLoop::Backend backend) {
  constexpr int kClients = 32;
  // The server's key set; every client diverges from it differently.
  const SetPair base = GenerateTwoSidedPair(3000, 0, 0, 32, 0xB0B);

  ServerOptions options;
  options.max_sessions = kClients;
  options.shards = shards;
  options.event_backend = backend;
  std::string error;
  auto server = ReconcileServer::Create(options, base.b, &error);
  ASSERT_NE(server, nullptr) << error;
  std::thread serving([&server] { server->Run(); });

  const std::vector<std::string> schemes =
      SchemeRegistry::Instance().Names();
  std::vector<std::thread> clients;
  std::vector<SessionResult> results(kClients);
  std::vector<std::vector<uint64_t>> truths(kClients);
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      // Each client derives its own divergent copy of the server set:
      // drop the first `i` elements and add `i + 5` fresh ones, so the
      // true difference (2i + 5 elements) varies per client.
      std::vector<uint64_t> local(base.b.begin() + i, base.b.end());
      std::vector<uint64_t> truth(base.b.begin(), base.b.begin() + i);
      Xoshiro256 rng(0x1000 + static_cast<uint64_t>(i));
      std::unordered_set<uint64_t> taken(base.b.begin(), base.b.end());
      for (int added = 0; added < i + 5;) {
        const uint64_t fresh = rng.Next() & 0xFFFFFFFFu;
        if (fresh == 0 || !taken.insert(fresh).second) continue;
        local.push_back(fresh);
        truth.push_back(fresh);
        ++added;
      }
      std::sort(truth.begin(), truth.end());
      truths[i] = truth;

      SessionConfig config;
      config.scheme_name = schemes[i % schemes.size()];
      config.options.pbs.max_rounds = 8;
      config.options.pbs.target_rounds = 3;
      config.seed = 0x5EED + static_cast<uint64_t>(i);
      config.estimate_seed = 0xE571 + static_cast<uint64_t>(i);
      config.exact_d = static_cast<double>(truth.size());

      std::string connect_error;
      auto transport =
          TcpConnect("127.0.0.1", server->port(), &connect_error);
      if (!transport) {
        failures.fetch_add(1);
        return;
      }
      results[i] = RunInitiatorSession(*transport, config, local);
      if (!results[i].ok) failures.fetch_add(1);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Every client recovered exactly its truth difference.
  for (int i = 0; i < kClients; ++i) {
    SCOPED_TRACE("client " + std::to_string(i) + " scheme " +
                 schemes[i % schemes.size()]);
    ASSERT_TRUE(results[i].ok) << results[i].error;
    EXPECT_TRUE(results[i].outcome.success);
    std::vector<uint64_t> recovered = results[i].outcome.difference;
    std::sort(recovered.begin(), recovered.end());
    EXPECT_EQ(recovered, truths[i]);
  }

  // Counters add up: 32 accepted, 32 completed, per-scheme tallies sum to
  // 32, nothing failed or timed out, and in-flight count drained to zero.
  ASSERT_TRUE(WaitForStats(*server, [](const ServerStats& s) {
    return s.completed + s.failed + s.timed_out >= kClients && s.active == 0;
  }));
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.accepted, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.timed_out, 0u);
  EXPECT_EQ(stats.rejected_capacity, 0u);
  uint64_t by_scheme = 0;
  for (const auto& [scheme, count] : stats.completed_by_scheme) {
    EXPECT_TRUE(std::find(schemes.begin(), schemes.end(), scheme) !=
                schemes.end())
        << scheme;
    by_scheme += count;
  }
  EXPECT_EQ(by_scheme, static_cast<uint64_t>(kClients));
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_GT(stats.bytes_out, 0u);

  server->Stop();
  serving.join();
}

TEST(ReconcileServer, ThirtyTwoConcurrentMixedSessions) {
  RunMixedStress(/*shards=*/1, EventLoop::Backend::kAuto);
}

// The sharded leg: the same 32 sessions handed off round-robin across 4
// shard threads must aggregate to identical totals. (Also the TSan
// target for the acceptor→shard pipe handoff and per-shard counters.)
TEST(ReconcileServer, ShardedStressAggregatesPerShardStats) {
  RunMixedStress(/*shards=*/4, EventLoop::Backend::kAuto);
}

// The persistent-table poll fallback serves sessions identically.
TEST(ReconcileServer, PollBackendServesSessions) {
  RunMixedStress(/*shards=*/2, EventLoop::Backend::kPoll);
}

TEST(ReconcileServer, CapacityRejectionTellsTheClientWhy) {
  ServerOptions options;
  options.max_sessions = 1;
  std::string error;
  auto server = ReconcileServer::Create(options, {1, 2, 3}, &error);
  ASSERT_NE(server, nullptr) << error;
  std::thread serving([&server] { server->Run(); });

  // Occupy the only slot with a connection that never speaks.
  auto squatter = TcpConnect("127.0.0.1", server->port(), &error);
  ASSERT_NE(squatter, nullptr) << error;
  ASSERT_TRUE(WaitForStats(
      *server, [](const ServerStats& s) { return s.accepted == 1; }));

  // The next client is told why it was refused.
  auto transport = TcpConnect("127.0.0.1", server->port(), &error);
  ASSERT_NE(transport, nullptr) << error;
  SessionConfig config;
  config.exact_d = 1.0;
  const SessionResult result =
      RunInitiatorSession(*transport, config, {1, 2});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("server at session capacity"),
            std::string::npos)
      << result.error;

  server->Stop();
  serving.join();
}

TEST(ReconcileServer, IdleConnectionsAreReaped) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  std::string error;
  auto server = ReconcileServer::Create(options, {1, 2, 3}, &error);
  ASSERT_NE(server, nullptr) << error;
  std::thread serving([&server] { server->Run(); });

  auto silent = TcpConnect("127.0.0.1", server->port(), &error);
  ASSERT_NE(silent, nullptr) << error;
  EXPECT_TRUE(WaitForStats(*server, [](const ServerStats& s) {
    return s.timed_out == 1 && s.active == 0;
  }));

  server->Stop();
  serving.join();
}

// A client that sends only a PARTIAL HELLO and goes silent must be
// reaped by the idle timeout — the half-frame sits in the engine's
// inbound buffer, never completing — and with max_sessions = 1 the
// follow-up session proves the freed slot is actually reused.
TEST(ReconcileServer, PartialHelloIsReapedAndSlotReused) {
  ServerOptions options;
  options.max_sessions = 1;
  options.idle_timeout_ms = 150;
  std::string error;
  auto server = ReconcileServer::Create(options, {1, 2, 3}, &error);
  ASSERT_NE(server, nullptr) << error;
  std::thread serving([&server] { server->Run(); });

  // First 5 bytes of a genuine HELLO frame, then silence.
  SessionConfig config;
  config.exact_d = 1.0;
  SessionEngine hello_source =
      SessionEngine::Initiator(config, std::vector<uint64_t>{1, 2});
  ASSERT_EQ(hello_source.Status(), SessionStatus::kWantWrite);
  uint8_t partial[5];
  ASSERT_EQ(hello_source.Poll(partial, sizeof(partial)), sizeof(partial));
  auto mute = TcpConnect("127.0.0.1", server->port(), &error);
  ASSERT_NE(mute, nullptr) << error;
  ASSERT_TRUE(mute->Send(partial, sizeof(partial)));

  ASSERT_TRUE(WaitForStats(*server, [](const ServerStats& s) {
    return s.timed_out == 1 && s.active == 0;
  }));
  EXPECT_GT(server->stats().bytes_in, 0u);  // The partial bytes counted.

  // The only slot is free again: a full session succeeds.
  auto transport = TcpConnect("127.0.0.1", server->port(), &error);
  ASSERT_NE(transport, nullptr) << error;
  const SessionResult result =
      RunInitiatorSession(*transport, config, {1, 2});
  EXPECT_TRUE(result.ok) << result.error;
  // The client returns on reading the DONE summary; the shard retires
  // the session (and bumps `completed`) a beat later.
  EXPECT_TRUE(WaitForStats(
      *server, [](const ServerStats& s) { return s.completed == 1; }));
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.rejected_capacity, 0u);

  server->Stop();
  serving.join();
}

// Churn stress: a writer thread mutates the served set through a
// MutableElementStore while 32 mixed-scheme clients reconcile against a
// 4-shard server. Snapshot isolation is the property under test: each
// session is admitted with one store snapshot, so every client's
// recovered difference must equal its symmetric difference against SOME
// published epoch — a diff matching no epoch would mean a torn read
// (elements from two epochs mixed inside one session). Also the TSan
// target for writer-publish vs shard-snapshot-load and the incremental
// sketch maintenance under concurrent readers.
TEST(ReconcileServer, ChurnStressEveryClientSeesOnePublishedEpoch) {
  constexpr int kClients = 32;
  constexpr int kBatches = 25;
  constexpr int kChurnPerSide = 2;
  // 12k base elements and <=100 elements of churn drift keep the largest
  // per-client d_hat (2*31 + 5 + 100 = 167) inside every baseline's
  // comfort zone — graphene in particular only tolerates a d_hat
  // overestimate in its no-Bloom-filter regime, which for |B| = 12000
  // holds up to d_hat ~ 200.
  const SetPair base = GenerateTwoSidedPair(12000, 0, 0, 32, 0xB0B);

  auto store = std::make_shared<MutableElementStore>(base.b);
  PbsConfig layout_config;
  layout_config.sig_bits = 32;
  std::string error;
  ASSERT_TRUE(store->ConfigureLayout(layout_config, 0xC11, 300, &error))
      << error;

  ServerOptions options;
  options.max_sessions = kClients;
  options.shards = 4;
  options.mutable_store = store;
  auto server = ReconcileServer::Create(options, {}, &error);
  ASSERT_NE(server, nullptr) << error;
  std::thread serving([&server] { server->Run(); });

  // Epoch log: every published (epoch, sorted element set), starting from
  // the snapshot the first sessions may be admitted with. The writer is
  // the only mutator, so this log is exhaustive.
  std::vector<std::pair<uint64_t, std::vector<uint64_t>>> epochs;
  {
    auto snap = store->snapshot();
    std::vector<uint64_t> sorted = *snap->elements;
    std::sort(sorted.begin(), sorted.end());
    epochs.emplace_back(snap->epoch, std::move(sorted));
  }
  std::thread writer([&store, &base, &epochs] {
    Xoshiro256 rng(0xC0FFEE);
    std::vector<uint64_t> mirror = base.b;
    std::unordered_set<uint64_t> used(base.b.begin(), base.b.end());
    for (int b = 0; b < kBatches; ++b) {
      UpdateBatch batch;
      for (int k = 0; k < kChurnPerSide;) {
        const uint64_t fresh = rng.Next() & 0xFFFFFFFFu;
        if (fresh == 0 || !used.insert(fresh).second) continue;
        batch.inserts.push_back(fresh);
        ++k;
      }
      for (int k = 0; k < kChurnPerSide; ++k) {
        // Swap-remove keeps the picks distinct and live pre-batch
        // (inserts are fresh, so insert-before-delete order is safe).
        const size_t idx = rng.NextBounded(mirror.size());
        batch.deletes.push_back(mirror[idx]);
        mirror[idx] = mirror.back();
        mirror.pop_back();
      }
      mirror.insert(mirror.end(), batch.inserts.begin(),
                    batch.inserts.end());
      const ApplyResult applied = store->Apply(batch);
      EXPECT_EQ(applied.inserted, static_cast<uint32_t>(kChurnPerSide));
      EXPECT_EQ(applied.deleted, static_cast<uint32_t>(kChurnPerSide));
      std::vector<uint64_t> sorted = mirror;
      std::sort(sorted.begin(), sorted.end());
      epochs.emplace_back(applied.epoch, std::move(sorted));
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  const std::vector<std::string> schemes =
      SchemeRegistry::Instance().Names();
  std::vector<std::thread> clients;
  std::vector<SessionResult> results(kClients);
  std::vector<std::vector<uint64_t>> locals(kClients);
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      // Divergent copy of the INITIAL set: drop the first i elements,
      // add i + 5 fresh ones (epochs only grow the true difference).
      std::vector<uint64_t> local(base.b.begin() + i, base.b.end());
      Xoshiro256 rng(0x2000 + static_cast<uint64_t>(i));
      std::unordered_set<uint64_t> taken(base.b.begin(), base.b.end());
      for (int added = 0; added < i + 5;) {
        const uint64_t fresh = rng.Next() & 0xFFFFFFFFu;
        if (fresh == 0 || !taken.insert(fresh).second) continue;
        local.push_back(fresh);
        ++added;
      }
      locals[i] = local;

      SessionConfig config;
      config.scheme_name = schemes[i % schemes.size()];
      config.options.pbs.max_rounds = 8;
      config.options.pbs.target_rounds = 3;
      config.seed = 0x5EED + static_cast<uint64_t>(i);
      config.estimate_seed = 0xE571 + static_cast<uint64_t>(i);
      // Upper bound over every epoch the session could be served from:
      // initial divergence plus the worst-case churn drift.
      config.exact_d = static_cast<double>(2 * i + 5) +
                       2.0 * kChurnPerSide * kBatches;

      std::string connect_error;
      auto transport =
          TcpConnect("127.0.0.1", server->port(), &connect_error);
      if (!transport) {
        failures.fetch_add(1);
        return;
      }
      results[i] = RunInitiatorSession(*transport, config, local);
      if (!results[i].ok) failures.fetch_add(1);
    });
  }
  for (auto& t : clients) t.join();
  writer.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_EQ(epochs.size(), static_cast<size_t>(kBatches) + 1);

  // Every client's diff is exact against exactly the epoch it was served
  // — so it must equal the symmetric difference against one of them.
  for (int i = 0; i < kClients; ++i) {
    SCOPED_TRACE("client " + std::to_string(i) + " scheme " +
                 schemes[i % schemes.size()]);
    ASSERT_TRUE(results[i].ok) << results[i].error;
    EXPECT_TRUE(results[i].outcome.success);
    std::vector<uint64_t> recovered = results[i].outcome.difference;
    std::sort(recovered.begin(), recovered.end());
    std::vector<uint64_t> local = locals[i];
    std::sort(local.begin(), local.end());
    bool matched = false;
    for (const auto& [epoch, elements] : epochs) {
      std::vector<uint64_t> diff;
      std::set_symmetric_difference(local.begin(), local.end(),
                                    elements.begin(), elements.end(),
                                    std::back_inserter(diff));
      if (diff == recovered) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched)
        << "recovered diff of " << recovered.size()
        << " elements matches no published epoch (torn read?)";
  }

  ASSERT_TRUE(WaitForStats(*server, [](const ServerStats& s) {
    return s.completed + s.failed + s.timed_out >= kClients && s.active == 0;
  }));
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.accepted, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.failed, 0u);

  server->Stop();
  serving.join();
}

// serve_limit powers `pbs_cli serve --once`: the loop returns by itself
// after the configured number of sessions.
TEST(ReconcileServer, ServeLimitStopsTheLoop) {
  ServerOptions options;
  options.serve_limit = 1;
  std::string error;
  auto server = ReconcileServer::Create(options, {1, 2, 3, 4}, &error);
  ASSERT_NE(server, nullptr) << error;
  std::thread serving([&server] { server->Run(); });

  SessionConfig config;
  config.exact_d = 2.0;
  auto transport = TcpConnect("127.0.0.1", server->port(), &error);
  ASSERT_NE(transport, nullptr) << error;
  const SessionResult result =
      RunInitiatorSession(*transport, config, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(result.ok) << result.error;
  serving.join();  // Returns without Stop().
  EXPECT_EQ(server->stats().completed, 1u);
}

}  // namespace
}  // namespace pbs
