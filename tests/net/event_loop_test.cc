// EventLoop: level-triggered readiness over epoll (Linux) and the
// persistent-table poll fallback.
//
// Every test runs against BOTH backends — the shard loop must behave
// identically whichever one the platform (or PBS_EVENT_LOOP) picks. On
// non-Linux builds the kEpoll request degrades to poll, so the suite
// still passes, just with both legs exercising the same backend.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "pbs/net/event_loop.h"

namespace pbs {
namespace {

// A pipe pair the loop can watch; the read end is readable only after a
// write, the write end is writable immediately.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int read_end() const { return fds[0]; }
  int write_end() const { return fds[1]; }
  void Put(char byte) { EXPECT_EQ(::write(fds[1], &byte, 1), 1); }
  char Take() {
    char byte = 0;
    EXPECT_EQ(::read(fds[0], &byte, 1), 1);
    return byte;
  }
};

void ForEachBackend(
    const std::function<void(EventLoop::Backend, const char*)>& body) {
  {
    SCOPED_TRACE("backend epoll (or its non-Linux poll degrade)");
    body(EventLoop::Backend::kEpoll, "epoll");
  }
  {
    SCOPED_TRACE("backend poll");
    body(EventLoop::Backend::kPoll, "poll");
  }
}

TEST(EventLoop, ReportsRequestedBackend) {
  EventLoop poll_loop(EventLoop::Backend::kPoll);
  ASSERT_TRUE(poll_loop.ok());
  EXPECT_STREQ(poll_loop.backend_name(), "poll");
#ifdef __linux__
  EventLoop epoll_loop(EventLoop::Backend::kEpoll);
  ASSERT_TRUE(epoll_loop.ok());
  EXPECT_STREQ(epoll_loop.backend_name(), "epoll");
#endif
}

TEST(EventLoop, WaitReportsReadAndWriteReadiness) {
  ForEachBackend([](EventLoop::Backend backend, const char*) {
    EventLoop loop(backend);
    ASSERT_TRUE(loop.ok());
    Pipe pipe;

    // Nothing registered: Wait times out immediately.
    EXPECT_EQ(loop.Wait(0), 0);

    ASSERT_TRUE(loop.Add(pipe.read_end(), EventLoop::kRead, 7));
    EXPECT_EQ(loop.watched(), 1u);
    EXPECT_EQ(loop.Wait(0), 0);  // Empty pipe: not readable.

    pipe.Put('x');
    ASSERT_EQ(loop.Wait(1000), 1);
    EXPECT_EQ(loop.events()[0].tag, 7u);
    EXPECT_NE(loop.events()[0].ready & EventLoop::kRead, 0u);

    // Level-triggered: still ready until drained.
    ASSERT_EQ(loop.Wait(0), 1);
    pipe.Take();
    EXPECT_EQ(loop.Wait(0), 0);

    // The write end is writable immediately.
    ASSERT_TRUE(loop.Add(pipe.write_end(), EventLoop::kWrite, 9));
    ASSERT_EQ(loop.Wait(1000), 1);
    EXPECT_EQ(loop.events()[0].tag, 9u);
    EXPECT_NE(loop.events()[0].ready & EventLoop::kWrite, 0u);
  });
}

TEST(EventLoop, ModifySwapsInterestAndTag) {
  ForEachBackend([](EventLoop::Backend backend, const char*) {
    EventLoop loop(backend);
    ASSERT_TRUE(loop.ok());
    Pipe pipe;
    pipe.Put('x');

    ASSERT_TRUE(loop.Add(pipe.read_end(), EventLoop::kRead, 1));
    ASSERT_EQ(loop.Wait(0), 1);

    // Interest off: a readable fd no longer reports.
    ASSERT_TRUE(loop.Modify(pipe.read_end(), 0, 1));
    EXPECT_EQ(loop.Wait(0), 0);

    // Interest back on under a new tag.
    ASSERT_TRUE(loop.Modify(pipe.read_end(), EventLoop::kRead, 42));
    ASSERT_EQ(loop.Wait(0), 1);
    EXPECT_EQ(loop.events()[0].tag, 42u);

    EXPECT_FALSE(loop.Modify(12345, EventLoop::kRead, 0));  // Unknown fd.
  });
}

TEST(EventLoop, AddRejectsDuplicatesAndRemoveUnregisters) {
  ForEachBackend([](EventLoop::Backend backend, const char*) {
    EventLoop loop(backend);
    ASSERT_TRUE(loop.ok());
    Pipe pipe;

    ASSERT_TRUE(loop.Add(pipe.read_end(), EventLoop::kRead, 1));
    EXPECT_FALSE(loop.Add(pipe.read_end(), EventLoop::kRead, 2));
    EXPECT_EQ(loop.watched(), 1u);

    pipe.Put('x');
    ASSERT_TRUE(loop.Remove(pipe.read_end()));
    EXPECT_EQ(loop.watched(), 0u);
    EXPECT_EQ(loop.Wait(0), 0);  // Readable but no longer watched.
    EXPECT_FALSE(loop.Remove(pipe.read_end()));  // Already gone.
  });
}

// The poll table (and epoll set) survives churn: registrations stay live
// across unrelated Add/Remove, including the swap-erase path of the
// persistent pollfd vector.
TEST(EventLoop, RegistrationsSurviveChurn) {
  ForEachBackend([](EventLoop::Backend backend, const char*) {
    EventLoop loop(backend);
    ASSERT_TRUE(loop.ok());
    std::vector<Pipe> pipes(5);
    for (size_t i = 0; i < pipes.size(); ++i) {
      ASSERT_TRUE(loop.Add(pipes[i].read_end(), EventLoop::kRead, i));
    }
    // Remove from the middle (swap-erase moves the last entry into its
    // slot) and from the front.
    ASSERT_TRUE(loop.Remove(pipes[2].read_end()));
    ASSERT_TRUE(loop.Remove(pipes[0].read_end()));
    EXPECT_EQ(loop.watched(), 3u);

    for (size_t i : {1u, 3u, 4u}) pipes[i].Put('x');
    pipes[0].Put('x');  // Unwatched: must not report.
    pipes[2].Put('x');

    int seen[5] = {0, 0, 0, 0, 0};
    const int n = loop.Wait(1000);
    ASSERT_EQ(n, 3);
    for (int i = 0; i < n; ++i) {
      ASSERT_LT(loop.events()[i].tag, 5u);
      ++seen[loop.events()[i].tag];
    }
    EXPECT_EQ(seen[0], 0);
    EXPECT_EQ(seen[1], 1);
    EXPECT_EQ(seen[2], 0);
    EXPECT_EQ(seen[3], 1);
    EXPECT_EQ(seen[4], 1);
  });
}

// The cross-thread wake pattern the shards use: another thread writes one
// byte into a watched pipe and a blocked Wait returns.
TEST(EventLoop, PipeWriteWakesABlockedWait) {
  ForEachBackend([](EventLoop::Backend backend, const char*) {
    EventLoop loop(backend);
    ASSERT_TRUE(loop.ok());
    Pipe pipe;
    ASSERT_TRUE(loop.Add(pipe.read_end(), EventLoop::kRead, 0));

    std::thread waker([&pipe] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      pipe.Put('w');
    });
    const int n = loop.Wait(5000);
    waker.join();
    ASSERT_EQ(n, 1);
    EXPECT_EQ(pipe.Take(), 'w');
  });
}

}  // namespace
}  // namespace pbs
