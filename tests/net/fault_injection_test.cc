// Fault-injection matrix for the resilient session layer.
//
// The contract under test (docs/ARCHITECTURE.md §8): a session driven
// through a FaultyTransport either settles with a difference
// bit-identical to the fault-free run, or fails closed with a
// diagnostic — it never hangs, never crashes, and never applies a
// partial result. On top of that, the resilient runner turns a
// mid-session disconnect of a *sharded* session into a RESUME
// re-attachment that finishes only the unsettled shards (strictly
// fewer wire bytes than a fresh restart), rejects stale tokens when
// the responder's set changed, and degrades a shard to a fallback
// scheme when the primary's retry ladder exhausts.
//
// Every test here runs under the CI TSan leg (gtest filter
// FaultInjection.*), so the loopback responder threads double as a
// race check on the transport pair and the resilient runner.

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "pbs/common/fault_injector.h"
#include "pbs/core/session_engine.h"
#include "pbs/core/set_reconciler.h"
#include "pbs/core/transport.h"
#include "pbs/core/wire_session.h"
#include "pbs/net/reconcile_server.h"
#include "pbs/net/retry_policy.h"
#include "pbs/sim/workload.h"

namespace pbs {
namespace {

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// One initiator session against a live loopback responder thread, with
// the initiator's send direction filtered through a FaultyTransport.
// Returns the initiator's result plus what the injector actually did.
struct FaultedRun {
  SessionResult initiator;
  FaultStats stats;
};

FaultedRun RunFaultedSession(const SessionConfig& config,
                             const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b,
                             const FaultSpec& spec) {
  auto ends = MakeLoopbackTransportPair();
  auto faulty =
      std::make_unique<FaultyTransport>(std::move(ends.first), spec);
  FaultyTransport* probe = faulty.get();
  std::thread responder(
      [&b, transport = std::move(ends.second)]() mutable {
        RunResponderSession(*transport, b);
      });
  FaultedRun run;
  run.initiator = RunInitiatorSession(*faulty, config, a);
  run.stats = probe->stats();
  faulty.reset();  // EOF unblocks the responder whatever state it is in.
  responder.join();
  return run;
}

// ------------------------------------------------------------ FaultSpec --

TEST(FaultInjection, SpecParsing) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(FaultSpec::Parse(
      "loss=0.01,corrupt=0.5,trunc=0.25,delay_ms=3,seed=42,"
      "disconnect_after_frames=7,disconnect_after_bytes=1024,"
      "short_writes=1,once=1",
      &spec, &error))
      << error;
  EXPECT_DOUBLE_EQ(spec.loss, 0.01);
  EXPECT_DOUBLE_EQ(spec.corrupt, 0.5);
  EXPECT_DOUBLE_EQ(spec.truncate, 0.25);
  EXPECT_EQ(spec.delay_ms, 3);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.disconnect_after_frames, 7);
  EXPECT_EQ(spec.disconnect_after_bytes, 1024);
  EXPECT_TRUE(spec.short_writes);
  EXPECT_TRUE(spec.first_conn_only);
  EXPECT_TRUE(spec.active());

  // An empty spec parses to the inactive default.
  ASSERT_TRUE(FaultSpec::Parse("", &spec, &error));
  EXPECT_FALSE(spec.active());

  // Out-of-range and malformed items fail with a diagnostic.
  EXPECT_FALSE(FaultSpec::Parse("loss=1.5", &spec, &error));
  EXPECT_FALSE(FaultSpec::Parse("loss=-0.1", &spec, &error));
  EXPECT_FALSE(FaultSpec::Parse("delay_ms=-1", &spec, &error));
  EXPECT_FALSE(FaultSpec::Parse("short_writes=2", &spec, &error));
  EXPECT_FALSE(FaultSpec::Parse("loss", &spec, &error));
  EXPECT_FALSE(FaultSpec::Parse("bogus_key=1", &spec, &error));
  EXPECT_NE(error.find("bogus_key"), std::string::npos) << error;
}

TEST(FaultInjection, SpecFromEnv) {
  ASSERT_EQ(setenv("PBS_FAULT_SPEC", "loss=0.25,seed=9", 1), 0);
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(FaultSpec::FromEnv(&spec, &error)) << error;
  EXPECT_DOUBLE_EQ(spec.loss, 0.25);
  EXPECT_EQ(spec.seed, 9u);

  ASSERT_EQ(setenv("PBS_FAULT_SPEC", "nope", 1), 0);
  EXPECT_FALSE(FaultSpec::FromEnv(&spec, &error));

  ASSERT_EQ(unsetenv("PBS_FAULT_SPEC"), 0);
  ASSERT_TRUE(FaultSpec::FromEnv(&spec, &error));
  EXPECT_FALSE(spec.active());
}

// ------------------------------------------------------- injector basics --

TEST(FaultInjection, InactiveInjectorIsTransparent) {
  const SetPair pair = GenerateTwoSidedPair(800, 10, 10, 32, 0xA1);
  SessionConfig config;
  config.scheme_name = "pbs";
  config.exact_d = static_cast<double>(pair.truth_diff.size());
  const FaultedRun run =
      RunFaultedSession(config, pair.a, pair.b, FaultSpec{});
  ASSERT_TRUE(run.initiator.ok) << run.initiator.error;
  EXPECT_EQ(Sorted(run.initiator.outcome.difference),
            Sorted(pair.truth_diff));
  // Even inactive, the decorator counts frames — disconnect schedules
  // size themselves from a passthrough run.
  EXPECT_GE(run.stats.frames_seen, 3u);
  EXPECT_GT(run.stats.bytes_forwarded, 0u);
  EXPECT_EQ(run.stats.frames_dropped, 0u);
  EXPECT_EQ(run.stats.disconnects, 0u);
}

TEST(FaultInjection, ShortWritesDeliverIdenticalBytes) {
  const SetPair pair = GenerateTwoSidedPair(800, 12, 12, 32, 0xB2);
  SessionConfig config;
  config.scheme_name = "pbs";
  config.exact_d = static_cast<double>(pair.truth_diff.size());
  FaultSpec spec;
  spec.short_writes = true;
  spec.seed = 5;
  const FaultedRun run = RunFaultedSession(config, pair.a, pair.b, spec);
  ASSERT_TRUE(run.initiator.ok) << run.initiator.error;
  EXPECT_EQ(Sorted(run.initiator.outcome.difference),
            Sorted(pair.truth_diff));
}

TEST(FaultInjection, SameSeedReplaysTheSameSchedule) {
  const SetPair pair = GenerateTwoSidedPair(700, 8, 8, 32, 0xC3);
  SessionConfig config;
  config.scheme_name = "pbs";
  config.exact_d = static_cast<double>(pair.truth_diff.size());
  config.phase_deadline_ms = 200;
  FaultSpec spec;
  spec.loss = 0.3;
  spec.corrupt = 0.2;
  spec.seed = 42;
  const FaultedRun r1 = RunFaultedSession(config, pair.a, pair.b, spec);
  const FaultedRun r2 = RunFaultedSession(config, pair.a, pair.b, spec);
  EXPECT_EQ(r1.stats.frames_seen, r2.stats.frames_seen);
  EXPECT_EQ(r1.stats.frames_dropped, r2.stats.frames_dropped);
  EXPECT_EQ(r1.stats.frames_corrupted, r2.stats.frames_corrupted);
  EXPECT_EQ(r1.stats.frames_truncated, r2.stats.frames_truncated);
  EXPECT_EQ(r1.stats.bytes_forwarded, r2.stats.bytes_forwarded);
  EXPECT_EQ(r1.initiator.ok, r2.initiator.ok);
}

// ----------------------------------------------------------- the matrix --

// Every registered scheme, under frame drops, single-bit corruption, and
// truncation-with-disconnect: a run either recovers the exact fault-free
// difference or fails closed with a diagnostic. Phase deadlines bound
// the drop case (a dropped frame has no retransmit at this layer, so the
// session *must* time out rather than hang).
TEST(FaultInjection, MatrixEverySchemeSucceedsExactlyOrFailsClosed) {
  const SetPair pair = GenerateTwoSidedPair(400, 8, 8, 32, 0xFA);
  const std::vector<uint64_t> truth = Sorted(pair.truth_diff);
  for (const std::string& name : SchemeRegistry::Instance().Names()) {
    SessionConfig config;
    config.scheme_name = name;
    config.options.pbs.max_rounds = 8;
    config.exact_d = static_cast<double>(pair.truth_diff.size());
    config.seed = 0x5EED;
    config.phase_deadline_ms = 250;

    const SessionResult clean = RunLoopbackSession(config, pair.a, pair.b);
    ASSERT_TRUE(clean.ok) << name << ": " << clean.error;

    for (int kind = 0; kind < 3; ++kind) {
      for (uint64_t seed = 1; seed <= 2; ++seed) {
        FaultSpec spec;
        const char* kind_name = "";
        switch (kind) {
          case 0:
            spec.loss = 0.4;
            kind_name = "drop";
            break;
          case 1:
            spec.corrupt = 0.4;
            kind_name = "corrupt";
            break;
          default:
            spec.truncate = 0.4;
            kind_name = "truncate";
            break;
        }
        spec.seed = seed;
        SCOPED_TRACE(name + " / " + kind_name + " / seed " +
                     std::to_string(seed));
        const FaultedRun run =
            RunFaultedSession(config, pair.a, pair.b, spec);
        if (run.initiator.ok && run.initiator.outcome.success) {
          // The schedule happened not to fire destructively: the result
          // must be bit-identical to the fault-free run.
          EXPECT_EQ(Sorted(run.initiator.outcome.difference), truth);
        } else {
          EXPECT_FALSE(run.initiator.error.empty())
              << "failed without a diagnostic";
        }
      }
    }
  }
}

// Disconnect immediately before EVERY frame index of a clean session:
// each cut must fail the session closed (the initiator needs an ack
// after its last frame, so no prefix of the conversation is enough).
TEST(FaultInjection, DisconnectAtEveryFrameIndexFailsClosed) {
  const SetPair pair = GenerateTwoSidedPair(600, 6, 6, 32, 0xDC);
  SessionConfig config;
  config.scheme_name = "pbs";
  config.exact_d = static_cast<double>(pair.truth_diff.size());
  config.phase_deadline_ms = 300;

  const FaultedRun clean =
      RunFaultedSession(config, pair.a, pair.b, FaultSpec{});
  ASSERT_TRUE(clean.initiator.ok) << clean.initiator.error;
  const uint64_t frames = clean.stats.frames_seen;
  ASSERT_GE(frames, 3u);

  for (uint64_t k = 0; k < frames; ++k) {
    SCOPED_TRACE("disconnect before frame " + std::to_string(k));
    FaultSpec spec;
    spec.disconnect_after_frames = static_cast<long long>(k);
    const FaultedRun run = RunFaultedSession(config, pair.a, pair.b, spec);
    EXPECT_FALSE(run.initiator.ok);
    EXPECT_FALSE(run.initiator.error.empty());
    EXPECT_EQ(run.stats.disconnects, 1u);
  }
}

// -------------------------------------------------------- phase deadline --

TEST(FaultInjection, PhaseDeadlineFailsASilentPeer) {
  auto ends = MakeLoopbackTransportPair();
  SessionConfig config;
  config.scheme_name = "pbs";
  config.exact_d = 4.0;
  config.phase_deadline_ms = 100;
  // Nobody ever answers; the held peer end keeps the link open so only
  // the deadline can end the session.
  const SessionResult result =
      RunInitiatorSession(*ends.first, config, {1, 2, 3});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("phase deadline exceeded"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("awaiting HELLO_ACK"), std::string::npos)
      << result.error;
}

// ------------------------------------------------------- resume / RESUME --

SessionConfig ShardedConfig(const SetPair& pair) {
  SessionConfig config;
  config.scheme_name = "pbs";
  config.exact_d = 32.0;  // Per-shard bound, ample for these workloads.
  config.keyspace_shards = 16;
  config.seed = 0x5EED;
  config.phase_deadline_ms = 3000;
  (void)pair;
  return config;
}

TEST(FaultInjection, ResumeFinishesShardedSessionWithLessWire) {
  const SetPair pair = GenerateTwoSidedPair(8000, 60, 60, 32, 0x1234);
  const SessionConfig config = ShardedConfig(pair);

  const FaultedRun clean =
      RunFaultedSession(config, pair.a, pair.b, FaultSpec{});
  ASSERT_TRUE(clean.initiator.ok) << clean.initiator.error;
  ASSERT_GT(clean.stats.frames_seen, 10u)
      << "workload too small to disconnect mid-stream";

  std::vector<std::thread> servers;
  int connections = 0;
  const TransportFactory factory =
      [&](std::string*) -> std::unique_ptr<ByteTransport> {
    auto ends = MakeLoopbackTransportPair();
    servers.emplace_back(
        [&pair, transport = std::move(ends.second)]() mutable {
          RunResponderSession(*transport, pair.b);
        });
    if (connections++ == 0) {
      FaultSpec spec;
      spec.disconnect_after_frames = 9;  // Mid sub-session stream.
      return MakeFaultyTransport(std::move(ends.first), spec);
    }
    return std::move(ends.first);
  };

  ResilientOptions options;
  options.retry.max_attempts = 3;
  options.retry.base_delay_ms = 1;
  options.retry.max_delay_ms = 4;
  ResilienceReport report;
  const SessionResult result = RunResilientInitiatorSession(
      factory, config, pair.a, options, &report);
  for (auto& t : servers) t.join();

  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(Sorted(result.outcome.difference), Sorted(pair.truth_diff));
  EXPECT_TRUE(report.used_resume);
  EXPECT_FALSE(report.stale_resume);
  EXPECT_EQ(report.sessions_run, 2);
  EXPECT_EQ(report.resumed_sessions, 1);
  // The resumed attempt re-attaches to the surviving shards: it must be
  // strictly cheaper on the wire than the fresh fault-free session.
  EXPECT_LT(report.last_wire_bytes, clean.initiator.outcome.wire_bytes);
  EXPECT_GT(report.total_wire_bytes, report.last_wire_bytes);
}

TEST(FaultInjection, StaleResumeRejectedAndCleanRestartSucceeds) {
  const SetPair pair = GenerateTwoSidedPair(4000, 40, 40, 32, 0xAB);
  const SessionConfig config = ShardedConfig(pair);

  // Force a mid-session disconnect to mint a resume token.
  FaultSpec spec;
  spec.disconnect_after_frames = 8;
  const FaultedRun broken = RunFaultedSession(config, pair.a, pair.b, spec);
  ASSERT_FALSE(broken.initiator.ok);
  ASSERT_NE(broken.initiator.resume_state, nullptr)
      << "failed sharded session left no resume token: "
      << broken.initiator.error;

  SessionConfig resume_config = config;
  resume_config.resume = broken.initiator.resume_state;

  // The responder's set changed between attempts: the Merkle root no
  // longer matches and the token must be rejected as stale.
  std::vector<uint64_t> changed = pair.b;
  const uint64_t extra = 0x1234567890ABCDEFull;
  ASSERT_EQ(std::find(changed.begin(), changed.end(), extra), changed.end());
  changed.push_back(extra);
  const SessionResult stale =
      RunLoopbackSession(resume_config, pair.a, changed);
  EXPECT_FALSE(stale.ok);
  EXPECT_NE(stale.error.find("stale resume"), std::string::npos)
      << stale.error;

  // Against the unchanged set, the resumed session finishes the job and
  // reports the FULL difference (settled shards from the token plus the
  // shards reconciled on this attempt).
  const SessionResult resumed =
      RunLoopbackSession(resume_config, pair.a, pair.b);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_EQ(Sorted(resumed.outcome.difference), Sorted(pair.truth_diff));
}

// ---------------------------------------------------------- degradation --

// Graphene cannot decode a difference this large at any bound in its
// per-shard retry ladder; instead of failing the session, each starved
// shard degrades to the ddigest fallback (which settles immediately at
// the carried bound) and the session still recovers the exact
// difference.
TEST(FaultInjection, GracefulDegradationFallsBackPerShard) {
  const SetPair pair = GenerateTwoSidedPair(1500, 1000, 1000, 32, 0xD16);
  SessionConfig config;
  config.scheme_name = "graphene";
  config.exact_d = 1.0;
  config.keyspace_shards = 2;
  config.seed = 0x5EED;
  const SessionResult result = RunLoopbackSession(config, pair.a, pair.b);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.outcome.success);
  EXPECT_EQ(Sorted(result.outcome.difference), Sorted(pair.truth_diff));
  EXPECT_GE(result.degraded_shards, 1);
  EXPECT_NE(result.outcome.params_summary.find(" degraded="),
            std::string::npos)
      << result.outcome.params_summary;
}

// ------------------------------------------------------ accept classifier --

TEST(FaultInjection, ClassifyAcceptErrorNarrowsTheBackoff) {
  // Per-connection transients: keep accepting.
  EXPECT_EQ(ClassifyAcceptError(ECONNABORTED), AcceptErrorAction::kRetry);
  EXPECT_EQ(ClassifyAcceptError(EINTR), AcceptErrorAction::kRetry);
  EXPECT_EQ(ClassifyAcceptError(EPROTO), AcceptErrorAction::kRetry);
  EXPECT_EQ(ClassifyAcceptError(ENETDOWN), AcceptErrorAction::kRetry);
  EXPECT_EQ(ClassifyAcceptError(EHOSTUNREACH), AcceptErrorAction::kRetry);
  // Resource exhaustion: leave the accept loop for a backoff window.
  EXPECT_EQ(ClassifyAcceptError(EMFILE), AcceptErrorAction::kBackoff);
  EXPECT_EQ(ClassifyAcceptError(ENFILE), AcceptErrorAction::kBackoff);
  EXPECT_EQ(ClassifyAcceptError(ENOBUFS), AcceptErrorAction::kBackoff);
  EXPECT_EQ(ClassifyAcceptError(ENOMEM), AcceptErrorAction::kBackoff);
  // Anything unrecognized backs off too (fail safe, never spin hot).
  EXPECT_EQ(ClassifyAcceptError(EINVAL), AcceptErrorAction::kBackoff);
}

}  // namespace
}  // namespace pbs
