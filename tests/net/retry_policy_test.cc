// Reconnect backoff: bounds, growth toward the cap, determinism, Reset.

#include <gtest/gtest.h>

#include <vector>

#include "pbs/net/retry_policy.h"

namespace pbs {
namespace {

TEST(RetryPolicy, DelaysStayWithinBounds) {
  RetryPolicy policy;
  policy.base_delay_ms = 50;
  policy.max_delay_ms = 2000;
  RetryBackoff backoff(policy);
  for (int i = 0; i < 50; ++i) {
    const int delay = backoff.NextDelayMs();
    EXPECT_GE(delay, policy.base_delay_ms) << "draw " << i;
    EXPECT_LE(delay, policy.max_delay_ms) << "draw " << i;
  }
}

TEST(RetryPolicy, FirstDelayIsNearTheBase) {
  RetryPolicy policy;
  policy.base_delay_ms = 100;
  policy.max_delay_ms = 10000;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    policy.seed = seed;
    RetryBackoff backoff(policy);
    // Decorrelated jitter draws the first delay from [base, 3 * base].
    const int first = backoff.NextDelayMs();
    EXPECT_GE(first, 100);
    EXPECT_LE(first, 300);
  }
}

TEST(RetryPolicy, SameSeedReplaysTheSameSchedule) {
  RetryPolicy policy;
  policy.seed = 0xFEED;
  RetryBackoff a(policy);
  RetryBackoff b(policy);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.NextDelayMs(), b.NextDelayMs()) << "draw " << i;
  }
  policy.seed = 0xBEEF;
  RetryBackoff c(policy);
  bool any_diff = false;
  RetryBackoff d(RetryPolicy{});  // Default seed.
  for (int i = 0; i < 20; ++i) {
    any_diff |= (c.NextDelayMs() != d.NextDelayMs());
  }
  EXPECT_TRUE(any_diff) << "different seeds produced identical schedules";
}

TEST(RetryPolicy, ResetRestartsTheLadder) {
  RetryPolicy policy;
  policy.base_delay_ms = 10;
  policy.max_delay_ms = 5000;
  RetryBackoff backoff(policy);
  for (int i = 0; i < 10; ++i) backoff.NextDelayMs();  // Climb the ladder.
  backoff.Reset();
  const int after_reset = backoff.NextDelayMs();
  EXPECT_GE(after_reset, 10);
  EXPECT_LE(after_reset, 30) << "Reset did not restart at the base delay";
}

TEST(RetryPolicy, DegenerateCapsClampSanely) {
  RetryPolicy policy;
  policy.base_delay_ms = 500;
  policy.max_delay_ms = 500;  // Cap == base: every delay is exactly 500.
  RetryBackoff backoff(policy);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(backoff.NextDelayMs(), 500);
  }
}

}  // namespace
}  // namespace pbs
