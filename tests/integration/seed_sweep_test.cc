// Broad randomized sweeps: protocol invariants that must hold for every
// seed, workload shape, and parameterization. These are the repository's
// main property-based defense against rare-path regressions (split
// cascades, estimator undershoot, fake-element unwinding).

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "pbs/core/reconciler.h"
#include "pbs/markov/success_probability.h"
#include "pbs/sim/workload.h"

namespace pbs {
namespace {

bool Matches(std::vector<uint64_t> got, std::vector<uint64_t> want) {
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  return got == want;
}

// Invariant 1: a reported success is always exactly correct -- across a
// grid of (seed, d, estimate-skew) combinations.
class SuccessIsTruth : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SuccessIsTruth, AcrossWorkloads) {
  const uint64_t seed = GetParam();
  for (int variant = 0; variant < 4; ++variant) {
    const size_t d = 1 + (seed * 13 + variant * 29) % 250;
    const int skew = static_cast<int>((seed + variant) % 5) - 2;
    const int d_used =
        std::max(1, static_cast<int>(d) + skew * static_cast<int>(d) / 4);
    SetPair pair = GenerateSetPair(1000 + d * 4, d, 32, seed * 31 + variant);
    PbsConfig config;
    config.max_rounds = 3 + variant;
    auto result =
        PbsSession::Reconcile(pair.a, pair.b, config, seed, d_used);
    if (result.success) {
      EXPECT_TRUE(Matches(result.difference, pair.truth_diff))
          << "seed=" << seed << " variant=" << variant;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuccessIsTruth,
                         ::testing::Range(uint64_t{1}, uint64_t{26}));

// Invariant 2: the difference set never contains an element of A n B.
class NoCommonElements : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NoCommonElements, DiffDisjointFromIntersection) {
  const uint64_t seed = GetParam();
  SetPair pair = GenerateTwoSidedPair(1200, 20 + seed % 40, 15 + seed % 25,
                                      32, seed);
  PbsConfig config;
  config.max_rounds = 6;
  auto result = PbsSession::Reconcile(pair.a, pair.b, config, seed ^ 0xF00,
                                      120);
  if (!result.success) return;
  std::unordered_set<uint64_t> in_a(pair.a.begin(), pair.a.end());
  std::unordered_set<uint64_t> in_b(pair.b.begin(), pair.b.end());
  for (uint64_t e : result.difference) {
    EXPECT_FALSE(in_a.count(e) && in_b.count(e)) << e;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoCommonElements,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

// Invariant 3: byte counts are deterministic in the seed and monotone-ish
// in d (more differences can never make round one cheaper at fixed plan).
TEST(SeedSweep, BytesGrowWithD) {
  PbsConfig config;
  double prev = 0;
  for (size_t d : {10, 50, 250, 1250}) {
    SetPair pair = GenerateSetPair(6000, d, 32, 99 + d);
    auto result = PbsSession::Reconcile(pair.a, pair.b, config, 3,
                                        static_cast<int>(1.4 * d));
    ASSERT_TRUE(result.success) << d;
    EXPECT_GT(static_cast<double>(result.data_bytes), prev) << d;
    prev = static_cast<double>(result.data_bytes);
  }
}

// Invariant 4: empirical per-group first-round success tracks the Markov
// chain's prediction (model validation at protocol level).
TEST(SeedSweep, EmpiricalRoundOneMatchesMarkovModel) {
  // One group (d small): Pr[settle in round 1] = Pr[x ->1 0] with x = d.
  const int d = 4;
  const int n = 63;
  int settled = 0;
  constexpr int kTrials = 600;
  PbsConfig config;
  config.max_rounds = 1;
  config.optimizer.min_m = 6;
  config.optimizer.max_m = 6;
  for (int trial = 0; trial < kTrials; ++trial) {
    SetPair pair = GenerateSetPair(400, d, 32, 5000 + trial);
    auto result = PbsSession::Reconcile(pair.a, pair.b, config, trial, d);
    if (result.success) ++settled;
  }
  const double empirical = static_cast<double>(settled) / kTrials;
  const double model = SingleGroupSuccess(n, 8, 1, d);
  EXPECT_NEAR(empirical, model, 0.05);
}

// Invariant 5: rounds never exceed max_rounds, and a success at round cap
// r also holds when re-run with a larger cap (monotonicity of settling).
class RoundMonotonicity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundMonotonicity, LargerCapNeverLosesSuccess) {
  const uint64_t seed = GetParam();
  SetPair pair = GenerateSetPair(3000, 120, 32, seed);
  PbsConfig tight;
  tight.max_rounds = 2;
  PbsConfig loose;
  loose.max_rounds = 6;
  auto r_tight = PbsSession::Reconcile(pair.a, pair.b, tight, seed, 166);
  auto r_loose = PbsSession::Reconcile(pair.a, pair.b, loose, seed, 166);
  EXPECT_LE(r_tight.rounds, 2);
  EXPECT_LE(r_loose.rounds, 6);
  if (r_tight.success) {
    EXPECT_TRUE(r_loose.success);
    EXPECT_EQ(r_tight.data_bytes, r_loose.data_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundMonotonicity,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace pbs
