// Cross-module integration tests: every scheme against every workload
// shape, exception-path forcing, and protocol-correctness invariants
// (Theorem 1 / Appendix C).

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "pbs/baselines/ddigest.h"
#include "pbs/baselines/graphene.h"
#include "pbs/baselines/pinsketch.h"
#include "pbs/baselines/pinsketch_wp.h"
#include "pbs/core/reconciler.h"
#include "pbs/sim/workload.h"

namespace pbs {
namespace {

bool Matches(std::vector<uint64_t> got, std::vector<uint64_t> want) {
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  return got == want;
}

// --- Workload shapes beyond the paper's B-subset-of-A setup ---

struct Shape {
  const char* name;
  size_t common;
  size_t a_only;
  size_t b_only;
};

class ShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(ShapeTest, PbsHandlesAllShapes) {
  const Shape& s = GetParam();
  SetPair pair =
      GenerateTwoSidedPair(s.common, s.a_only, s.b_only, 32, 77);
  PbsConfig config;
  config.max_rounds = 5;
  auto result = PbsSession::Reconcile(
      pair.a, pair.b, config, 7,
      static_cast<int>(1.4 * (s.a_only + s.b_only)) + 1);
  ASSERT_TRUE(result.success) << s.name;
  EXPECT_TRUE(Matches(result.difference, pair.truth_diff)) << s.name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeTest,
    ::testing::Values(Shape{"subset_b_in_a", 2000, 80, 0},
                      Shape{"superset_a_in_b", 2000, 0, 80},
                      Shape{"two_sided", 2000, 40, 40},
                      Shape{"disjoint_small", 0, 30, 30},
                      Shape{"empty_b", 0, 50, 0},
                      Shape{"empty_a", 0, 0, 50}),
    [](const auto& info) { return info.param.name; });

// --- Exception forcing ---

TEST(Exceptions, BchFailurePathViaGrossUnderestimate) {
  // d_used = 5 (one group, t ~ 13) against a true d of 60 forces the BCH
  // decoding exception and the three-way split machinery.
  SetPair pair = GenerateSetPair(2000, 60, 32, 5);
  PbsConfig config;
  config.max_rounds = 8;
  auto result = PbsSession::Reconcile(pair.a, pair.b, config, 11, 5);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(Matches(result.difference, pair.truth_diff));
  EXPECT_GE(result.rounds, 2);  // Splits cost at least one extra round.
}

TEST(Exceptions, TinyBitmapForcesTypeExceptionsAcrossRounds) {
  // Cram 60 distinct elements into one group with n = 63 bins: many bins
  // get >= 2 distinct elements (type I/II exceptions), requiring the
  // multi-round machinery of Section 2.4.
  SetPair pair = GenerateSetPair(1000, 60, 32, 9);
  PbsConfig config;
  config.max_rounds = 10;
  config.optimizer.min_m = 6;
  config.optimizer.max_m = 6;  // Pin the bitmap at n = 63.
  config.optimizer.t_high = 13.0;  // Allow t up to 65 so BCH decode works.
  auto result = PbsSession::Reconcile(pair.a, pair.b, config, 13, 60);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(Matches(result.difference, pair.truth_diff));
  EXPECT_GE(result.rounds, 2);
}

TEST(Exceptions, MaxRoundsOneWithCollisionsFailsHonestly) {
  // With n = 63 and 40 elements in one group, round 1 cannot reconcile
  // everything; capping at one round must yield success == false.
  SetPair pair = GenerateSetPair(1000, 40, 32, 15);
  PbsConfig config;
  config.max_rounds = 1;
  config.optimizer.min_m = 6;
  config.optimizer.max_m = 6;
  config.optimizer.t_high = 9.0;
  auto result = PbsSession::Reconcile(pair.a, pair.b, config, 17, 40);
  EXPECT_FALSE(result.success);
}

// --- Theorem 1: whenever the protocol reports success, the reconciled
// difference is exactly A triangle B (checksum gatekeeping) ---

TEST(Correctness, ReportedSuccessIsAlwaysCorrect) {
  for (int trial = 0; trial < 30; ++trial) {
    const size_t d = 1 + (trial * 7) % 120;
    SetPair pair = GenerateSetPair(2000 + 100 * trial, d, 32, 400 + trial);
    PbsConfig config;
    config.max_rounds = 2 + trial % 3;
    // Deliberately noisy estimates, under and over.
    const int d_used = std::max<int>(1, static_cast<int>(d) - 10 + trial % 21);
    auto result =
        PbsSession::Reconcile(pair.a, pair.b, config, trial, d_used);
    if (result.success) {
      EXPECT_TRUE(Matches(result.difference, pair.truth_diff))
          << "trial " << trial;
    }
  }
}

// --- Cross-scheme agreement on the same instance ---

TEST(CrossScheme, AllSchemesAgreeOnTheSameInstance) {
  SetPair pair = GenerateSetPair(4000, 75, 32, 21);
  PbsConfig config;

  auto pbs = PbsSession::Reconcile(pair.a, pair.b, config, 3, 104);
  auto pin = PinSketchReconcile(pair.a, pair.b, 104, 32, 3);
  auto dd = DDigestReconcile(pair.a, pair.b, 75, 32, 3);
  auto gr = GrapheneReconcile(pair.a, pair.b, 104, 32, 3);
  auto wp = PinSketchWpReconcile(pair.a, pair.b, 104, 5, 13, 32, 3, 3);

  ASSERT_TRUE(pbs.success);
  ASSERT_TRUE(pin.success);
  ASSERT_TRUE(dd.success);
  ASSERT_TRUE(gr.success);
  ASSERT_TRUE(wp.success);
  EXPECT_TRUE(Matches(pbs.difference, pair.truth_diff));
  EXPECT_TRUE(Matches(pin.difference, pair.truth_diff));
  EXPECT_TRUE(Matches(dd.difference, pair.truth_diff));
  EXPECT_TRUE(Matches(gr.difference, pair.truth_diff));
  EXPECT_TRUE(Matches(wp.difference, pair.truth_diff));
}

// --- Communication-overhead ordering on one instance (Figure 1b/2b) ---

TEST(CrossScheme, ByteOrderingPinsketchPbsDdigest) {
  SetPair pair = GenerateSetPair(6000, 150, 32, 23);
  PbsConfig config;
  auto pbs = PbsSession::Reconcile(pair.a, pair.b, config, 5, 207);
  auto pin = PinSketchReconcile(pair.a, pair.b, 207, 32, 5);
  auto dd = DDigestReconcile(pair.a, pair.b, 150, 32, 5);
  ASSERT_TRUE(pbs.success && pin.success && dd.success);
  EXPECT_LT(pin.data_bytes, pbs.data_bytes);
  EXPECT_LT(pbs.data_bytes, dd.data_bytes);
}

// --- Determinism: same seeds, same everything ---

TEST(Determinism, IdenticalRunsProduceIdenticalResults) {
  SetPair pair = GenerateSetPair(3000, 64, 32, 29);
  PbsConfig config;
  auto r1 = PbsSession::Reconcile(pair.a, pair.b, config, 31, 89);
  auto r2 = PbsSession::Reconcile(pair.a, pair.b, config, 31, 89);
  EXPECT_EQ(r1.success, r2.success);
  EXPECT_EQ(r1.data_bytes, r2.data_bytes);
  EXPECT_EQ(r1.rounds, r2.rounds);
  auto d1 = r1.difference, d2 = r2.difference;
  std::sort(d1.begin(), d1.end());
  std::sort(d2.begin(), d2.end());
  EXPECT_EQ(d1, d2);
}

// --- Large-scale single instance (closer to paper scale) ---

TEST(Scale, HundredThousandElementsThousandDifferences) {
  SetPair pair = GenerateSetPair(100000, 1000, 32, 37);
  PbsConfig config;
  auto result = PbsSession::Reconcile(pair.a, pair.b, config, 41, 1380);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(Matches(result.difference, pair.truth_diff));
  // ~2-3x minimum even at scale.
  EXPECT_LT(result.data_bytes, 3.2 * 1000 * 4);
}

}  // namespace
}  // namespace pbs
