// Differential tests for PowerSumSketch::DecodeBatchInto: for every sketch
// in a batch the outcome (ok flag, recovered elements, and their order)
// must be bit-identical to a per-sketch DecodeInto call, across randomized
// mixes of empty, decodable, and overloaded (> t differences) sketches,
// ragged batch sizes, verify on/off, and every Chien-sized field.

#include "pbs/bch/power_sum_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

std::vector<uint64_t> DistinctElements(const GF2m& f, size_t count,
                                       Xoshiro256* rng) {
  std::set<uint64_t> xs;
  while (xs.size() < count) xs.insert(rng->NextBounded(f.order()) + 1);
  return {xs.begin(), xs.end()};
}

TEST(DecodeBatchDiff, MatchesPerSketchDecodeAcrossRandomMixes) {
  Xoshiro256 rng(0xDEC0DE);
  for (int m : {5, 8, 11, 16}) {
    const GF2m field(m);
    const int t = 16;
    Workspace ws_batch, ws_serial;
    for (bool verify : {true, false}) {
      for (int iter = 0; iter < 8; ++iter) {
        // Ragged batch sizes: below, at, and above kDecodeBatch.
        const int n = 1 + static_cast<int>(rng.NextBounded(11));
        std::vector<PowerSumSketch> sketches;
        sketches.reserve(n);
        for (int i = 0; i < n; ++i) {
          sketches.emplace_back(field, t);
          // Mix: ~1/4 empty, ~1/2 decodable (<= t), ~1/4 overloaded (> t,
          // capped by the field size so elements stay distinct).
          const uint64_t kind = rng.NextBounded(4);
          size_t count = 0;
          if (kind == 1 || kind == 2) {
            count = rng.NextBounded(t) + 1;
          } else if (kind == 3) {
            count = std::min<uint64_t>(t + 1 + rng.NextBounded(t),
                                       field.order() - 1);
          }
          for (uint64_t x : DistinctElements(field, count, &rng)) {
            sketches[i].Toggle(x);
          }
        }

        std::vector<const PowerSumSketch*> ptrs(n);
        std::vector<std::vector<uint64_t>> batch_out(n);
        std::vector<std::vector<uint64_t>*> out_ptrs(n);
        std::vector<uint8_t> ok(n, 0xCC);
        for (int i = 0; i < n; ++i) {
          ptrs[i] = &sketches[i];
          out_ptrs[i] = &batch_out[i];
        }
        PowerSumSketch::DecodeBatchInto(
            Span<const PowerSumSketch* const>(ptrs.data(), n),
            Span<std::vector<uint64_t>* const>(out_ptrs.data(), n),
            Span<uint8_t>(ok.data(), n), ws_batch, verify);

        for (int i = 0; i < n; ++i) {
          std::vector<uint64_t> serial_out;
          const bool serial_ok =
              sketches[i].DecodeInto(&serial_out, ws_serial, verify);
          ASSERT_EQ(ok[i] != 0, serial_ok)
              << "m=" << m << " verify=" << verify << " iter=" << iter
              << " sketch=" << i;
          ASSERT_EQ(batch_out[i], serial_out)
              << "m=" << m << " verify=" << verify << " iter=" << iter
              << " sketch=" << i;
        }
      }
    }
  }
}

TEST(DecodeBatchDiff, EmptyBatchIsANoOp) {
  Workspace ws;
  PowerSumSketch::DecodeBatchInto(Span<const PowerSumSketch* const>(nullptr, 0),
                                  Span<std::vector<uint64_t>* const>(nullptr, 0),
                                  Span<uint8_t>(nullptr, 0), ws);
}

TEST(DecodeBatchDiff, OutputsAreClearedBeforeRefill) {
  const GF2m field(11);
  const int t = 8;
  Workspace ws;
  PowerSumSketch a(field, t), b(field, t);
  a.Toggle(41);
  a.Toggle(977);
  // b stays empty: decodes to the empty set, must still clear its out.
  std::vector<uint64_t> out_a = {1, 2, 3}, out_b = {4, 5, 6};
  const PowerSumSketch* ptrs[] = {&a, &b};
  std::vector<uint64_t>* outs[] = {&out_a, &out_b};
  uint8_t ok[2] = {0, 0};
  PowerSumSketch::DecodeBatchInto(Span<const PowerSumSketch* const>(ptrs, 2),
                                  Span<std::vector<uint64_t>* const>(outs, 2),
                                  Span<uint8_t>(ok, 2), ws);
  EXPECT_EQ(ok[0], 1);
  EXPECT_EQ(ok[1], 1);
  std::set<uint64_t> got(out_a.begin(), out_a.end());
  EXPECT_EQ(got, (std::set<uint64_t>{41, 977}));
  EXPECT_TRUE(out_b.empty());
}

TEST(DecodeBatchDiff, LargeFieldFallbackMatchesSerial) {
  // Above the Chien threshold DecodeBatchInto degrades to per-sketch
  // DecodeInto; the contract (identical results) must still hold.
  const GF2m field(32);
  const int t = 4;
  Xoshiro256 rng(0xB16F1E1D);
  Workspace ws_batch, ws_serial;
  std::vector<PowerSumSketch> sketches;
  for (int i = 0; i < 3; ++i) {
    sketches.emplace_back(field, t);
    for (uint64_t x : DistinctElements(field, i + 1, &rng)) {
      sketches[i].Toggle(x);
    }
  }
  std::vector<const PowerSumSketch*> ptrs = {&sketches[0], &sketches[1],
                                             &sketches[2]};
  std::vector<std::vector<uint64_t>> batch_out(3);
  std::vector<std::vector<uint64_t>*> out_ptrs = {&batch_out[0], &batch_out[1],
                                                  &batch_out[2]};
  uint8_t ok[3] = {0, 0, 0};
  PowerSumSketch::DecodeBatchInto(
      Span<const PowerSumSketch* const>(ptrs.data(), 3),
      Span<std::vector<uint64_t>* const>(out_ptrs.data(), 3),
      Span<uint8_t>(ok, 3), ws_batch);
  for (int i = 0; i < 3; ++i) {
    std::vector<uint64_t> serial_out;
    const bool serial_ok = sketches[i].DecodeInto(&serial_out, ws_serial);
    ASSERT_EQ(ok[i] != 0, serial_ok) << "sketch=" << i;
    ASSERT_EQ(batch_out[i], serial_out) << "sketch=" << i;
  }
}

}  // namespace
}  // namespace pbs
