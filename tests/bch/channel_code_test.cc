#include "pbs/bch/channel_code.h"

#include <gtest/gtest.h>

#include <set>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

std::vector<uint8_t> RandomMessage(int bits, Xoshiro256* rng) {
  std::vector<uint8_t> message(bits);
  for (auto& bit : message) bit = rng->Next() & 1;
  return message;
}

TEST(ChannelCode, RateMatchesAppendixI) {
  // n = 2^m - 1 total, t*m check bits, n - t*m message bits.
  BchChannelCode code(8, 5);
  EXPECT_EQ(code.block_bits(), 255);
  EXPECT_EQ(code.check_bits(), 40);
  EXPECT_EQ(code.message_bits(), 215);
}

TEST(ChannelCode, CleanBlockRoundTrips) {
  BchChannelCode code(8, 5);
  Xoshiro256 rng(1);
  const auto message = RandomMessage(code.message_bits(), &rng);
  const auto block = code.Encode(message);
  EXPECT_EQ(static_cast<int>(block.size()), code.block_bits());
  auto decoded = code.Decode(block);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
}

class ChannelErrors : public ::testing::TestWithParam<int> {};

TEST_P(ChannelErrors, MessageBitErrorsCorrected) {
  const int errors = GetParam();
  BchChannelCode code(9, 8);
  Xoshiro256 rng(10 + errors);
  const auto message = RandomMessage(code.message_bits(), &rng);
  auto block = code.Encode(message);
  std::set<int> positions;
  while (static_cast<int>(positions.size()) < errors) {
    positions.insert(
        static_cast<int>(rng.NextBounded(code.message_bits())));
  }
  for (int pos : positions) block[pos] ^= 1;
  auto decoded = code.Decode(block);
  ASSERT_TRUE(decoded.has_value()) << errors << " errors";
  EXPECT_EQ(*decoded, message);
}

INSTANTIATE_TEST_SUITE_P(Counts, ChannelErrors,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(ChannelCode, CheckBitErrorsToleratedWhenMessageClean) {
  BchChannelCode code(8, 5);
  Xoshiro256 rng(3);
  const auto message = RandomMessage(code.message_bits(), &rng);
  auto block = code.Encode(message);
  // Flip three check bits.
  block[code.message_bits() + 1] ^= 1;
  block[code.message_bits() + 7] ^= 1;
  block[code.message_bits() + 20] ^= 1;
  auto decoded = code.Decode(block);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
}

TEST(ChannelCode, FarTooManyErrorsDetectedOrConsistent) {
  BchChannelCode code(8, 4);
  Xoshiro256 rng(5);
  const auto message = RandomMessage(code.message_bits(), &rng);
  auto block = code.Encode(message);
  for (int i = 0; i < 40; ++i) {
    block[rng.NextBounded(code.block_bits())] ^= 1;
  }
  auto decoded = code.Decode(block);
  if (decoded.has_value()) {
    // Any accepted decode must re-encode to within t of the received
    // block (the decoder's acceptance contract).
    const auto reencoded = code.Encode(*decoded);
    int mismatches = 0;
    for (int i = 0; i < code.block_bits(); ++i) {
      if (reencoded[i] != block[i]) ++mismatches;
    }
    EXPECT_LE(mismatches, 4);
  }
}

TEST(ChannelCode, PbsModeCarriesMoreMessageBitsThanChannelMode) {
  // The Appendix-I comparison, executable: for the same (n, t), PBS's
  // reliable-codeword setting leaves all n bits for the "message" (the
  // parity bitmap), while the noisy-channel mode only n - t*m.
  BchChannelCode code(7, 13);
  EXPECT_EQ(code.block_bits(), 127);     // PBS: bitmap length n = 127.
  EXPECT_EQ(code.message_bits(), 36);    // Channel mode: 127 - 13*7.
  EXPECT_LT(code.message_bits(), code.block_bits());
}

}  // namespace
}  // namespace pbs
