#include "pbs/bch/levinson.h"

#include <gtest/gtest.h>

#include <set>

#include "pbs/bch/berlekamp_massey.h"
#include "pbs/common/rng.h"

namespace pbs {
namespace {

std::vector<uint64_t> SyndromesOf(const GF2m& f,
                                  const std::vector<uint64_t>& locators,
                                  int t) {
  std::vector<uint64_t> s(2 * t, 0);
  for (uint64_t x : locators) {
    uint64_t p = 1;
    for (int k = 1; k <= 2 * t; ++k) {
      p = f.Mul(p, x);
      s[k - 1] ^= p;
    }
  }
  return s;
}

std::vector<uint64_t> DistinctNonzero(const GF2m& f, int count,
                                      Xoshiro256* rng) {
  std::set<uint64_t> s;
  while (static_cast<int>(s.size()) < count) {
    s.insert(rng->NextBounded(f.order()) + 1);
  }
  return {s.begin(), s.end()};
}

TEST(LevinsonSolve, OneByOneSystem) {
  GF2m f(8);
  auto x = LevinsonSolveHankel(f, {7}, {21});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(f.Mul(7, (*x)[0]), 21u);
}

TEST(LevinsonSolve, SingularLeadingEntryRejected) {
  GF2m f(8);
  EXPECT_FALSE(LevinsonSolveHankel(f, {0}, {5}).has_value());
}

TEST(LevinsonSolve, MatchesDirectSubstitutionOnRandomRegularSystems) {
  GF2m f(11);
  Xoshiro256 rng(3);
  int solved = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int v = 2 + static_cast<int>(rng.NextBounded(8));
    std::vector<uint64_t> h(2 * v - 1), b(v);
    for (auto& e : h) e = rng.NextBounded(f.order() + 1);
    for (auto& e : b) e = rng.NextBounded(f.order() + 1);
    auto x = LevinsonSolveHankel(f, h, b);
    if (!x.has_value()) continue;  // Irregular instance; allowed.
    ++solved;
    // Substitute: H x must equal b.
    for (int i = 0; i < v; ++i) {
      uint64_t acc = 0;
      for (int j = 0; j < v; ++j) acc ^= f.Mul(h[i + j], (*x)[j]);
      EXPECT_EQ(acc, b[i]) << "trial " << trial << " row " << i;
    }
  }
  EXPECT_GE(solved, 40);  // Random systems are regular w.h.p.
}

// On regular error-locator instances Levinson must agree with BM.
class LevinsonVsBm : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LevinsonVsBm, LocatorsAgreeOnRegularInstances) {
  const auto [m, errors] = GetParam();
  GF2m f(m);
  Xoshiro256 rng(m * 17 + errors);
  int compared = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto locators = DistinctNonzero(f, errors, &rng);
    const auto syndromes = SyndromesOf(f, locators, errors);
    auto lev = LevinsonLocator(f, syndromes, errors);
    if (!lev.has_value()) continue;  // Levinson-irregular; BM handles these.
    auto bm = BerlekampMassey(f, syndromes);
    ASSERT_TRUE(bm.IsConsistent());
    ASSERT_EQ(static_cast<int>(lev->size()) - 1, bm.lambda.degree());
    for (int j = 0; j <= bm.lambda.degree(); ++j) {
      EXPECT_EQ((*lev)[j], bm.lambda.coeff(j));
    }
    ++compared;
  }
  EXPECT_GE(compared, 10) << "too many irregular instances";
}

INSTANTIATE_TEST_SUITE_P(Sweep, LevinsonVsBm,
                         ::testing::Combine(::testing::Values(8, 11, 32),
                                            ::testing::Values(2, 5, 9, 13)));

TEST(LevinsonLocator, ZeroErrorsIsConstantOne) {
  GF2m f(8);
  auto lambda = LevinsonLocator(f, std::vector<uint64_t>(8, 0), 0);
  ASSERT_TRUE(lambda.has_value());
  EXPECT_EQ(*lambda, std::vector<uint64_t>{1});
}

TEST(LevinsonLocator, InconsistentSyndromesRejected) {
  // Syndromes of 5 errors cannot be explained with v = 2.
  GF2m f(11);
  Xoshiro256 rng(9);
  const auto locators = DistinctNonzero(f, 5, &rng);
  const auto syndromes = SyndromesOf(f, locators, 5);
  EXPECT_FALSE(LevinsonLocator(f, syndromes, 2).has_value());
}

TEST(LevinsonLocator, QuadraticCostObservation) {
  // Structural, not a timing assertion: solving v and 2v systems both
  // succeed on regular instances, exercising the O(v^2) recursion depth.
  GF2m f(32);
  Xoshiro256 rng(21);
  for (int v : {8, 16, 32}) {
    const auto locators = DistinctNonzero(f, v, &rng);
    const auto syndromes = SyndromesOf(f, locators, v);
    auto lambda = LevinsonLocator(f, syndromes, v);
    if (lambda.has_value()) {
      EXPECT_EQ(lambda->size(), static_cast<size_t>(v) + 1);
    }
  }
}

}  // namespace
}  // namespace pbs
