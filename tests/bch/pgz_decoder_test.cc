#include "pbs/bch/pgz_decoder.h"

#include <gtest/gtest.h>

#include <set>

#include "pbs/bch/berlekamp_massey.h"
#include "pbs/common/rng.h"

namespace pbs {
namespace {

std::vector<uint64_t> SyndromesOf(const GF2m& f,
                                  const std::vector<uint64_t>& locators,
                                  int t) {
  std::vector<uint64_t> s(2 * t, 0);
  for (uint64_t x : locators) {
    uint64_t p = 1;
    for (int k = 1; k <= 2 * t; ++k) {
      p = f.Mul(p, x);
      s[k - 1] ^= p;
    }
  }
  return s;
}

std::vector<uint64_t> DistinctNonzero(const GF2m& f, int count,
                                      Xoshiro256* rng) {
  std::set<uint64_t> s;
  while (static_cast<int>(s.size()) < count) {
    s.insert(rng->NextBounded(f.order()) + 1);
  }
  return {s.begin(), s.end()};
}

TEST(PgzDecoder, ZeroSyndromesGiveConstantOne) {
  GF2m f(8);
  auto lambda = PgzLocator(f, std::vector<uint64_t>(8, 0));
  ASSERT_TRUE(lambda.has_value());
  EXPECT_EQ(lambda->degree(), 0);
}

// PGZ and BM must agree on the locator polynomial for all in-capacity
// error patterns: they solve the same key equation.
class PgzVsBm : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PgzVsBm, LocatorsIdentical) {
  const auto [m, errors] = GetParam();
  const int t = 13;
  GF2m f(m);
  Xoshiro256 rng(m * 37 + errors);
  for (int trial = 0; trial < 10; ++trial) {
    const auto locators = DistinctNonzero(f, errors, &rng);
    const auto syndromes = SyndromesOf(f, locators, t);
    auto pgz = PgzLocator(f, syndromes);
    auto bm = BerlekampMassey(f, syndromes);
    ASSERT_TRUE(pgz.has_value());
    ASSERT_TRUE(bm.IsConsistent());
    EXPECT_TRUE(*pgz == bm.lambda) << "m=" << m << " errors=" << errors;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PgzVsBm,
                         ::testing::Combine(::testing::Values(8, 11, 32),
                                            ::testing::Values(1, 2, 5, 9,
                                                              13)));

TEST(PgzDecoder, LocatorRootsAreInverseLocators) {
  GF2m f(10);
  Xoshiro256 rng(5);
  const auto locators = DistinctNonzero(f, 4, &rng);
  auto lambda = PgzLocator(f, SyndromesOf(f, locators, 6));
  ASSERT_TRUE(lambda.has_value());
  for (uint64_t x : locators) EXPECT_EQ(lambda->Eval(f.Inv(x)), 0u);
}

TEST(PgzDecoder, OverCapacityCannotExplainAllLocators) {
  // Like BM, PGZ fed 2t syndromes of an e > t error pattern returns a
  // locator of degree <= t, so it can never cover all e roots; full
  // detection happens at root finding / re-verification.
  GF2m f(11);
  Xoshiro256 rng(77);
  const int t = 4;
  for (int trial = 0; trial < 20; ++trial) {
    const auto locators = DistinctNonzero(f, 7, &rng);
    auto lambda = PgzLocator(f, SyndromesOf(f, locators, t));
    if (!lambda.has_value()) continue;  // Rejected outright: fine.
    EXPECT_LE(lambda->degree(), t);
    int roots_found = 0;
    for (uint64_t x : locators) {
      if (lambda->Eval(f.Inv(x)) == 0) ++roots_found;
    }
    EXPECT_LT(roots_found, 7) << "trial " << trial;
  }
}

}  // namespace
}  // namespace pbs
