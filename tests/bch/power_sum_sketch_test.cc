#include "pbs/bch/power_sum_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

std::vector<uint64_t> DistinctNonzero(const GF2m& f, int count,
                                      Xoshiro256* rng) {
  std::set<uint64_t> s;
  while (static_cast<int>(s.size()) < count) {
    s.insert(rng->NextBounded(f.order()) + 1);
  }
  return {s.begin(), s.end()};
}

TEST(PowerSumSketch, EmptyDecodesToEmptySet) {
  GF2m f(8);
  PowerSumSketch s(f, 5);
  EXPECT_TRUE(s.IsZero());
  auto decoded = s.Decode();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(PowerSumSketch, ToggleTwiceCancels) {
  GF2m f(8);
  PowerSumSketch s(f, 5);
  s.Toggle(100);
  EXPECT_FALSE(s.IsZero());
  s.Toggle(100);
  EXPECT_TRUE(s.IsZero());
}

TEST(PowerSumSketch, MergeEqualsSymmetricDifference) {
  GF2m f(10);
  PowerSumSketch sa(f, 8), sb(f, 8), sd(f, 8);
  // A = {1,2,3,4}, B = {3,4,5}; A /\triangle B = {1,2,5}.
  for (uint64_t e : {1, 2, 3, 4}) sa.Toggle(e);
  for (uint64_t e : {3, 4, 5}) sb.Toggle(e);
  for (uint64_t e : {1, 2, 5}) sd.Toggle(e);
  sa.Merge(sb);
  EXPECT_EQ(sa.odd_syndromes(), sd.odd_syndromes());
}

TEST(PowerSumSketch, WireSizeIsTTimesM) {
  GF2m f(11);
  PowerSumSketch s(f, 13);
  EXPECT_EQ(s.bit_size(), 13 * 11);
  BitWriter w;
  s.Serialize(&w);
  EXPECT_EQ(w.bit_size(), 13u * 11u);
}

TEST(PowerSumSketch, SerializeRoundTrips) {
  GF2m f(11);
  Xoshiro256 rng(3);
  PowerSumSketch s(f, 7);
  for (uint64_t e : DistinctNonzero(f, 5, &rng)) s.Toggle(e);
  BitWriter w;
  s.Serialize(&w);
  BitReader r(w.bytes());
  PowerSumSketch back = PowerSumSketch::Deserialize(&r, f, 7);
  EXPECT_EQ(back.odd_syndromes(), s.odd_syndromes());
}

// Decode must recover exactly the toggled set whenever |set| <= t,
// across field sizes (Chien + trace paths) and fill levels.
class SketchRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SketchRoundTrip, DecodesExactSet) {
  const auto [m, count, t] = GetParam();
  if (count > t) GTEST_SKIP();
  GF2m f(m);
  Xoshiro256 rng(m * 1007 + count * 13 + t);
  auto elements = DistinctNonzero(f, count, &rng);
  PowerSumSketch s(f, t);
  for (uint64_t e : elements) s.Toggle(e);
  auto decoded = s.Decode();
  ASSERT_TRUE(decoded.has_value());
  std::sort(decoded->begin(), decoded->end());
  EXPECT_EQ(*decoded, elements);
}

INSTANTIATE_TEST_SUITE_P(
    BitmapFields, SketchRoundTrip,
    ::testing::Combine(::testing::Values(6, 7, 8, 9, 10, 11),
                       ::testing::Values(0, 1, 2, 5, 13, 17),
                       ::testing::Values(13, 17)));

INSTANTIATE_TEST_SUITE_P(
    UniverseFields, SketchRoundTrip,
    ::testing::Combine(::testing::Values(32, 63),
                       ::testing::Values(0, 1, 5, 13, 40),
                       ::testing::Values(13, 40)));

// Over capacity: the decoder must report failure, not hallucinate.
class SketchOverflow : public ::testing::TestWithParam<int> {};

TEST_P(SketchOverflow, OverCapacityDetected) {
  const int m = GetParam();
  GF2m f(m);
  const int t = 5;
  Xoshiro256 rng(m * 31);
  int failures = 0;
  constexpr int kTrials = 30;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto elements = DistinctNonzero(f, t + 3 + trial % 5, &rng);
    PowerSumSketch s(f, t);
    for (uint64_t e : elements) s.Toggle(e);
    auto decoded = s.Decode(/*verify=*/true);
    if (!decoded.has_value()) {
      ++failures;
      continue;
    }
    // If decode "succeeded", verify=true guarantees the result's syndromes
    // match -- but it must not equal the real set (which has > t elements).
    EXPECT_LT(decoded->size(), elements.size());
  }
  EXPECT_GE(failures, kTrials * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(Fields, SketchOverflow,
                         ::testing::Values(7, 8, 10, 11, 32));

TEST(PowerSumSketch, CapacityExactlyTDecodes) {
  GF2m f(11);
  Xoshiro256 rng(8);
  const int t = 17;
  auto elements = DistinctNonzero(f, t, &rng);
  PowerSumSketch s(f, t);
  for (uint64_t e : elements) s.Toggle(e);
  auto decoded = s.Decode();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->size(), static_cast<size_t>(t));
}

TEST(PowerSumSketch, TwoSketchDifferenceDecodesAcrossParties) {
  // The PinSketch use case: Alice and Bob sketch overlapping sets; the
  // merged sketch decodes to the symmetric difference.
  GF2m f(32);
  Xoshiro256 rng(21);
  const int t = 10;
  auto common = DistinctNonzero(f, 500, &rng);
  PowerSumSketch sa(f, t), sb(f, t);
  for (uint64_t e : common) {
    sa.Toggle(e);
    sb.Toggle(e);
  }
  std::vector<uint64_t> diff;
  for (uint64_t e : DistinctNonzero(f, 600, &rng)) {
    bool in_common = std::find(common.begin(), common.end(), e) != common.end();
    if (!in_common && diff.size() < 7) diff.push_back(e);
  }
  ASSERT_EQ(diff.size(), 7u);
  for (size_t i = 0; i < diff.size(); ++i) {
    (i % 2 == 0 ? sa : sb).Toggle(diff[i]);
  }
  sa.Merge(sb);
  auto decoded = sa.Decode();
  ASSERT_TRUE(decoded.has_value());
  std::sort(decoded->begin(), decoded->end());
  std::sort(diff.begin(), diff.end());
  EXPECT_EQ(*decoded, diff);
}

TEST(PowerSumSketch, VerificationCatchesTamperedSyndromes) {
  GF2m f(8);
  Xoshiro256 rng(9);
  PowerSumSketch s(f, 4);
  for (uint64_t e : DistinctNonzero(f, 3, &rng)) s.Toggle(e);
  // Corrupt by merging a bogus single-element sketch into only the first
  // syndrome position via a crafted sketch of capacity 1... simplest:
  // serialize, flip a bit, deserialize.
  BitWriter w;
  s.Serialize(&w);
  auto bytes = w.TakeBytes();
  bytes[0] ^= 1;
  BitReader r(bytes);
  PowerSumSketch corrupted = PowerSumSketch::Deserialize(&r, f, 4);
  // Either decode fails, or (rarely) it decodes to some *different* set
  // that legitimately matches the corrupted syndromes.
  auto decoded = corrupted.Decode(/*verify=*/true);
  if (decoded.has_value()) {
    PowerSumSketch check(f, 4);
    for (uint64_t e : *decoded) check.Toggle(e);
    EXPECT_EQ(check.odd_syndromes(), corrupted.odd_syndromes());
  }
}

}  // namespace
}  // namespace pbs
