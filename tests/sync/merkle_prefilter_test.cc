// Merkle pre-filter codecs: digest-leaf and diff-bitmap wire round trips,
// strict size validation, dirty-padding rejection, and leafwise diffing.

#include "pbs/sync/merkle_prefilter.h"

#include <gtest/gtest.h>

#include <vector>

#include "pbs/common/rng.h"

namespace pbs::sync {
namespace {

std::vector<uint64_t> RandomLeaves(size_t count, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> leaves(count);
  for (auto& leaf : leaves) leaf = rng.Next();
  return leaves;
}

TEST(MerklePrefilter, RootMatchesForEqualLeaves) {
  const auto leaves = RandomLeaves(100, 1);
  EXPECT_EQ(MerkleRootOf(leaves), MerkleRootOf(leaves));
}

TEST(MerklePrefilter, RootSensitiveToAnyLeaf) {
  auto leaves = RandomLeaves(64, 2);
  const uint64_t root = MerkleRootOf(leaves);
  for (size_t k = 0; k < leaves.size(); k += 9) {
    auto mutated = leaves;
    mutated[k] ^= 1;
    EXPECT_NE(MerkleRootOf(mutated), root) << "leaf " << k;
  }
}

TEST(MerklePrefilter, EmptyRootsAgree) {
  EXPECT_EQ(MerkleRootOf({}), MerkleRootOf({}));
}

TEST(MerklePrefilter, DigestLeavesRoundTrip) {
  const auto leaves = RandomLeaves(37, 3);
  const auto payload = EncodeDigestLeaves(leaves);
  EXPECT_EQ(payload.size(), 37u * 8u);
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(DecodeDigestLeaves(payload, 37, &decoded));
  EXPECT_EQ(decoded, leaves);
}

TEST(MerklePrefilter, DigestLeavesRejectWrongCount) {
  const auto payload = EncodeDigestLeaves(RandomLeaves(8, 4));
  std::vector<uint64_t> decoded;
  EXPECT_FALSE(DecodeDigestLeaves(payload, 7, &decoded));
  EXPECT_FALSE(DecodeDigestLeaves(payload, 9, &decoded));
}

TEST(MerklePrefilter, DigestLeavesRejectTruncatedPayload) {
  auto payload = EncodeDigestLeaves(RandomLeaves(4, 5));
  payload.pop_back();
  std::vector<uint64_t> decoded;
  EXPECT_FALSE(DecodeDigestLeaves(payload, 4, &decoded));
}

TEST(MerklePrefilter, DiffBitmapRoundTripAllWidths) {
  // Exercise every padding width: shard counts crossing byte boundaries.
  for (size_t shards : {1u, 2u, 7u, 8u, 9u, 16u, 17u, 100u}) {
    Xoshiro256 rng(shards);
    std::vector<uint8_t> differs(shards);
    for (auto& bit : differs) bit = rng.Next() & 1;
    const auto payload = EncodeDiffBitmap(differs);
    EXPECT_EQ(payload.size(), (shards + 7) / 8);
    std::vector<uint8_t> decoded;
    ASSERT_TRUE(DecodeDiffBitmap(payload, shards, &decoded))
        << shards << " shards";
    EXPECT_EQ(decoded, differs);
  }
}

TEST(MerklePrefilter, DiffBitmapBitLayoutIsLsbFirst) {
  // Bit k lives at byte k/8, bit k%8 -- pinned because it is wire format.
  std::vector<uint8_t> differs(10, 0);
  differs[0] = 1;
  differs[9] = 1;
  const auto payload = EncodeDiffBitmap(differs);
  ASSERT_EQ(payload.size(), 2u);
  EXPECT_EQ(payload[0], 0x01);
  EXPECT_EQ(payload[1], 0x02);
}

TEST(MerklePrefilter, DiffBitmapRejectsWrongSize) {
  std::vector<uint8_t> decoded;
  EXPECT_FALSE(DecodeDiffBitmap({0x00}, 9, &decoded));        // Too short.
  EXPECT_FALSE(DecodeDiffBitmap({0x00, 0x00}, 8, &decoded));  // Too long.
}

TEST(MerklePrefilter, DiffBitmapRejectsDirtyPadding) {
  // 9 shards need 2 bytes with 7 padding bits; any of them set is a
  // malformed (possibly hostile) frame, not silently-ignored noise.
  std::vector<uint8_t> decoded;
  EXPECT_TRUE(DecodeDiffBitmap({0xFF, 0x01}, 9, &decoded));
  EXPECT_FALSE(DecodeDiffBitmap({0xFF, 0x02}, 9, &decoded));
  EXPECT_FALSE(DecodeDiffBitmap({0x00, 0x80}, 9, &decoded));
}

TEST(MerklePrefilter, DiffDigestLeavesFindsExactIndices) {
  auto a = RandomLeaves(50, 6);
  auto b = a;
  b[3] ^= 1;
  b[17] ^= 0xFF;
  b[49] ^= 1ULL << 40;
  EXPECT_EQ(DiffDigestLeaves(a, b), (std::vector<uint32_t>{3, 17, 49}));
  EXPECT_TRUE(DiffDigestLeaves(a, a).empty());
}

}  // namespace
}  // namespace pbs::sync
