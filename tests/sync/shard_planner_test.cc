// Deterministic keyspace sharding: plan derivation, scalar/batch shard
// assignment parity, streamed leaf digests vs the naive per-shard fold,
// selective partitioning, and sub-session seed separation.

#include "pbs/sync/shard_planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "pbs/common/mset_hash.h"
#include "pbs/common/rng.h"

namespace pbs::sync {
namespace {

std::vector<uint64_t> RandomElements(size_t count, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::set<uint64_t> unique;
  while (unique.size() < count) {
    const uint64_t e = rng.Next();
    if (e != 0) unique.insert(e);
  }
  return std::vector<uint64_t>(unique.begin(), unique.end());
}

TEST(ShardPlan, DerivationIsDeterministic) {
  const ShardPlan a = ShardPlan::Derive(16, 0xC11);
  const ShardPlan b = ShardPlan::Derive(16, 0xC11);
  EXPECT_EQ(a.shard_count, 16);
  EXPECT_EQ(a.partition_salt, b.partition_salt);
  EXPECT_EQ(a.checksum_salt, b.checksum_salt);
  EXPECT_EQ(a.session_seed, b.session_seed);
}

TEST(ShardPlan, SeedSeparatesPlans) {
  const ShardPlan a = ShardPlan::Derive(16, 1);
  const ShardPlan b = ShardPlan::Derive(16, 2);
  EXPECT_NE(a.partition_salt, b.partition_salt);
  EXPECT_NE(a.checksum_salt, b.checksum_salt);
}

TEST(ShardPlan, RolesSeparateSalts) {
  // Partition and checksum salts of one plan must be independent hash
  // functions (disjoint HashFamily roles).
  const ShardPlan plan = ShardPlan::Derive(64, 0xABCDEF);
  EXPECT_NE(plan.partition_salt, plan.checksum_salt);
}

TEST(ShardPlan, ShardOfStaysInRange) {
  const ShardPlan plan = ShardPlan::Derive(7, 0x5EED);
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(plan.ShardOf(rng.Next()), 7u);
  }
}

TEST(ShardPlan, ShardOfManyMatchesScalar) {
  const ShardPlan plan = ShardPlan::Derive(23, 0x7777);
  const auto elements = RandomElements(4097, 9);  // Off-block-boundary size.
  std::vector<uint64_t> batch(elements.size());
  plan.ShardOfMany(elements.data(), elements.size(), batch.data());
  for (size_t i = 0; i < elements.size(); ++i) {
    ASSERT_EQ(batch[i], plan.ShardOf(elements[i])) << "element " << i;
  }
}

TEST(ShardPlan, ShardOfManyAliasingIsSafe) {
  const ShardPlan plan = ShardPlan::Derive(11, 0x1234);
  auto elements = RandomElements(513, 10);
  std::vector<uint64_t> expected(elements.size());
  plan.ShardOfMany(elements.data(), elements.size(), expected.data());
  plan.ShardOfMany(elements.data(), elements.size(), elements.data());
  EXPECT_EQ(elements, expected);
}

TEST(ShardPlan, PartitionIsReasonablyBalanced) {
  const ShardPlan plan = ShardPlan::Derive(16, 0xBA1A);
  const auto elements = RandomElements(16000, 11);
  std::vector<size_t> counts(16, 0);
  for (uint64_t e : elements) counts[plan.ShardOf(e)]++;
  for (size_t c : counts) {
    EXPECT_GT(c, 500u);   // Mean 1000; a decent hash stays well above half.
    EXPECT_LT(c, 2000u);  // ... and below double.
  }
}

TEST(ComputeShardLeaves, MatchesNaivePerShardFold) {
  const ShardPlan plan = ShardPlan::Derive(13, 0xFEED);
  const auto elements = RandomElements(3001, 12);
  const auto leaves = ComputeShardLeaves(plan, elements.data(),
                                         elements.size());
  ASSERT_EQ(leaves.size(), 13u);
  std::vector<MsetHash> naive(13, MsetHash(plan.checksum_salt));
  for (uint64_t e : elements) naive[plan.ShardOf(e)].Add(e);
  for (size_t k = 0; k < 13; ++k) {
    EXPECT_EQ(leaves[k], naive[k].Fold64()) << "shard " << k;
  }
}

TEST(ComputeShardLeaves, OrderIndependent) {
  const ShardPlan plan = ShardPlan::Derive(8, 0xCAFE);
  auto elements = RandomElements(500, 13);
  const auto forward = ComputeShardLeaves(plan, elements.data(),
                                          elements.size());
  std::reverse(elements.begin(), elements.end());
  EXPECT_EQ(ComputeShardLeaves(plan, elements.data(), elements.size()),
            forward);
}

TEST(ComputeShardLeaves, EmptySetGivesIdenticalLeavesEverywhere) {
  const ShardPlan plan = ShardPlan::Derive(5, 0x1);
  const auto leaves = ComputeShardLeaves(plan, nullptr, 0);
  ASSERT_EQ(leaves.size(), 5u);
  // All empty shards share the empty-multiset digest.
  for (uint64_t leaf : leaves) EXPECT_EQ(leaf, leaves[0]);
}

TEST(ComputeShardLeaves, SingleElementMovesExactlyOneLeaf) {
  const ShardPlan plan = ShardPlan::Derive(9, 0x99);
  const auto empty = ComputeShardLeaves(plan, nullptr, 0);
  const uint64_t element = 0xDEADBEEF;
  const auto one = ComputeShardLeaves(plan, &element, 1);
  const uint32_t owner = plan.ShardOf(element);
  for (size_t k = 0; k < 9; ++k) {
    if (k == owner) {
      EXPECT_NE(one[k], empty[k]);
    } else {
      EXPECT_EQ(one[k], empty[k]);
    }
  }
}

TEST(PartitionSelected, CopiesExactlyTheSelectedShards) {
  const ShardPlan plan = ShardPlan::Derive(10, 0x505);
  const auto elements = RandomElements(2000, 14);
  const std::vector<uint32_t> selected = {0, 3, 7, 9};
  std::vector<std::vector<uint64_t>> parts;
  PartitionSelected(elements.data(), elements.size(), plan, selected, &parts);
  ASSERT_EQ(parts.size(), selected.size());
  size_t copied = 0, expected_copied = 0;
  for (size_t i = 0; i < selected.size(); ++i) {
    for (uint64_t e : parts[i]) {
      EXPECT_EQ(plan.ShardOf(e), selected[i]);
    }
    copied += parts[i].size();
  }
  for (uint64_t e : elements) {
    const uint32_t owner = plan.ShardOf(e);
    if (std::find(selected.begin(), selected.end(), owner) != selected.end()) {
      ++expected_copied;
    }
  }
  EXPECT_EQ(copied, expected_copied);
  // Every selected element really landed in its owner's bucket.
  std::set<uint64_t> seen;
  for (const auto& part : parts) seen.insert(part.begin(), part.end());
  EXPECT_EQ(seen.size(), expected_copied);
}

TEST(PartitionSelected, SelectedShardsPreserveMultisetDigest) {
  // The partitioned shard must fold to the same leaf the streaming pass
  // computed -- that equality is what makes the pre-filter sound.
  const ShardPlan plan = ShardPlan::Derive(6, 0x606);
  const auto elements = RandomElements(999, 15);
  const auto leaves = ComputeShardLeaves(plan, elements.data(),
                                         elements.size());
  std::vector<std::vector<uint64_t>> parts;
  PartitionSelected(elements.data(), elements.size(), plan, {1, 4}, &parts);
  for (size_t i = 0; i < 2; ++i) {
    MsetHash fold(plan.checksum_salt);
    for (uint64_t e : parts[i]) fold.Add(e);
    EXPECT_EQ(fold.Fold64(), leaves[i == 0 ? 1 : 4]);
  }
}

TEST(ShardPlan, SubSeedsAreDistinctAcrossShards) {
  const ShardPlan plan = ShardPlan::Derive(4096, 0xC11);
  std::set<uint64_t> seeds;
  for (uint32_t k = 0; k < 4096; ++k) seeds.insert(plan.SubSeed(k));
  EXPECT_EQ(seeds.size(), 4096u);
  // ... and none equals the outer session seed itself.
  EXPECT_EQ(seeds.count(plan.session_seed), 0u);
}

TEST(ShardPlan, SubEstimateSeedIndependentOfSubSeed) {
  const ShardPlan plan = ShardPlan::Derive(16, 0xC11);
  for (uint32_t k = 0; k < 16; ++k) {
    EXPECT_NE(plan.SubSeed(k), ShardPlan::SubEstimateSeed(0xE57, k));
  }
}

TEST(ShardPlan, SubSeedsDeterministicAcrossDerivations) {
  const ShardPlan a = ShardPlan::Derive(32, 0xBEEF);
  const ShardPlan b = ShardPlan::Derive(32, 0xBEEF);
  for (uint32_t k = 0; k < 32; ++k) {
    EXPECT_EQ(a.SubSeed(k), b.SubSeed(k));
  }
}

}  // namespace
}  // namespace pbs::sync
