// Sharded session differential suite: the load-bearing guarantee is that
// a sharded session recovers EXACTLY the monolithic difference -- for
// every registered scheme, every shard count, every decode thread count,
// every pipeline depth, and every byte chunking. On top of that: the
// identical-set fast path settles in four frames without shipping leaves,
// responder-side shard-count clamping works, the exact_d path skips the
// per-shard estimate exchange, and a mutable store's incrementally
// maintained shard checksums are adopted (and a mismatched configuration
// falls back to streaming) without changing the recovered difference.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "pbs/common/rng.h"
#include "pbs/core/element_store.h"
#include "pbs/core/session_engine.h"
#include "pbs/core/wire_session.h"
#include "pbs/sim/workload.h"

namespace pbs {
namespace {

// Pumps two engines against each other on the calling thread, moving
// outbound bytes in chunks of next_chunk() bytes (clamped to >= 1).
template <typename ChunkFn>
void PumpEngines(SessionEngine* initiator, SessionEngine* responder,
                 ChunkFn next_chunk) {
  std::vector<uint8_t> buffer(1 << 16);
  bool progress = true;
  while (progress) {
    progress = false;
    while (initiator->Status() == SessionStatus::kWantWrite) {
      const size_t want = std::max<size_t>(1, next_chunk());
      const size_t n =
          initiator->Poll(buffer.data(), std::min(want, buffer.size()));
      responder->Feed(buffer.data(), n);
      progress = true;
    }
    while (responder->Status() == SessionStatus::kWantWrite) {
      const size_t want = std::max<size_t>(1, next_chunk());
      const size_t n =
          responder->Poll(buffer.data(), std::min(want, buffer.size()));
      initiator->Feed(buffer.data(), n);
      progress = true;
    }
  }
}

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

SessionConfig BaseConfig(const std::string& scheme) {
  SessionConfig config;
  config.scheme_name = scheme;
  config.options.pbs.max_rounds = 8;
  config.options.pbs.target_rounds = 3;
  config.seed = 0x5EED;
  config.estimate_seed = 0xE571;
  return config;
}

// The acceptance-pinned differential: for every scheme x shard count x
// decode thread count, the sorted sharded difference equals the sorted
// monolithic difference equals the ground truth.
TEST(ShardedSession, DifferenceMatchesMonolithicForEveryScheme) {
  const SetPair pair = GenerateTwoSidedPair(1500, 20, 25, 32, 0xC4A);
  const std::vector<uint64_t> truth = Sorted(pair.truth_diff);
  for (const std::string& name : SchemeRegistry::Instance().Names()) {
    SCOPED_TRACE(name);
    SessionConfig mono = BaseConfig(name);
    const SessionResult reference = RunLoopbackSession(mono, pair.a, pair.b);
    ASSERT_TRUE(reference.ok) << reference.error;
    EXPECT_EQ(Sorted(reference.outcome.difference), truth);

    for (int shards : {2, 7, 16}) {
      for (int threads : {1, 3}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " threads=" + std::to_string(threads));
        SessionConfig config = BaseConfig(name);
        config.keyspace_shards = shards;
        config.options.pbs.decode_threads = threads;
        const SessionResult result = RunLoopbackSession(config, pair.a,
                                                        pair.b);
        ASSERT_TRUE(result.ok) << result.error;
        EXPECT_TRUE(result.outcome.success);
        EXPECT_EQ(Sorted(result.outcome.difference), truth);
        EXPECT_EQ(result.scheme, name);
        EXPECT_GT(result.d_hat, 0.0);
      }
    }
  }
}

// Identical sets: equal Merkle roots settle the whole session in four
// frames (SHARD_PLAN, SHARD_PLAN_ACK, DONE, DONE ack) -- no leaves, no
// sub-sessions, no estimate exchange.
TEST(ShardedSession, IdenticalSetsSettleInFourFrames) {
  const SetPair pair = GenerateTwoSidedPair(2000, 0, 0, 32, 0xD00D);
  SessionConfig config = BaseConfig("pbs");
  config.keyspace_shards = 64;
  const SessionResult result = RunLoopbackSession(config, pair.a, pair.a);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.outcome.success);
  EXPECT_TRUE(result.outcome.difference.empty());
  EXPECT_EQ(result.outcome.rounds, 0);
  EXPECT_EQ(result.outcome.wire_frames, 4);
  EXPECT_EQ(result.d_hat, 0.0);
  EXPECT_NE(result.outcome.params_summary.find("identical=64"),
            std::string::npos)
      << result.outcome.params_summary;
}

// A small difference under many shards: most shards are identical, the
// pre-filter names the few that differ, and the summary accounts for
// both populations.
TEST(ShardedSession, PrefilterSkipsIdenticalShards) {
  const SetPair pair = GenerateTwoSidedPair(4000, 2, 1, 32, 0xF00);
  SessionConfig config = BaseConfig("pbs");
  config.keyspace_shards = 256;
  const SessionResult result = RunLoopbackSession(config, pair.a, pair.b);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(Sorted(result.outcome.difference), Sorted(pair.truth_diff));
  // At most 3 differing elements -> at most 3 differing shards.
  const std::string& summary = result.outcome.params_summary;
  EXPECT_NE(summary.find("shards=256"), std::string::npos) << summary;
  size_t identical = 0, differing = 0;
  ASSERT_EQ(std::sscanf(summary.c_str(), "shards=%*d identical=%zu differing=%zu",
                        &identical, &differing),
            2)
      << summary;
  EXPECT_LE(differing, 3u);
  EXPECT_EQ(identical + differing, 256u);
}

// Byte-chunking torture: one byte at a time and seeded random chunks.
// Frame ORDER may legally vary with chunking (pipeline top-ups interleave
// differently), so only the recovered difference and success are pinned.
TEST(ShardedSession, ChunkedFeedsRecoverTheSameDifference) {
  const SetPair pair = GenerateTwoSidedPair(1200, 15, 18, 32, 0xABC);
  const std::vector<uint64_t> truth = Sorted(pair.truth_diff);
  SessionConfig config = BaseConfig("pbs");
  config.keyspace_shards = 8;
  {
    SCOPED_TRACE("one byte at a time");
    SessionEngine initiator = SessionEngine::Initiator(config, pair.a);
    SessionEngine responder = SessionEngine::Responder(pair.b);
    PumpEngines(&initiator, &responder, [] { return size_t{1}; });
    ASSERT_EQ(initiator.Status(), SessionStatus::kDone)
        << initiator.result().error;
    EXPECT_EQ(Sorted(initiator.TakeResult().outcome.difference), truth);
    EXPECT_TRUE(responder.result().ok) << responder.result().error;
  }
  {
    SCOPED_TRACE("random chunks");
    Xoshiro256 rng(0xC0FFEE);
    SessionEngine initiator = SessionEngine::Initiator(config, pair.a);
    SessionEngine responder = SessionEngine::Responder(pair.b);
    PumpEngines(&initiator, &responder,
                [&rng] { return 1 + rng.NextBounded(97); });
    ASSERT_EQ(initiator.Status(), SessionStatus::kDone)
        << initiator.result().error;
    EXPECT_EQ(Sorted(initiator.TakeResult().outcome.difference), truth);
    EXPECT_TRUE(responder.result().ok) << responder.result().error;
  }
}

// Pipeline depth is a pacing knob, never a correctness knob.
TEST(ShardedSession, PipelineDepthDoesNotChangeTheDifference) {
  const SetPair pair = GenerateTwoSidedPair(1500, 20, 25, 32, 0xC4A);
  const std::vector<uint64_t> truth = Sorted(pair.truth_diff);
  for (int pipeline : {1, 2, 64}) {
    SCOPED_TRACE("pipeline=" + std::to_string(pipeline));
    SessionConfig config = BaseConfig("pbs");
    config.keyspace_shards = 16;
    config.shard_pipeline = pipeline;
    const SessionResult result = RunLoopbackSession(config, pair.a, pair.b);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(Sorted(result.outcome.difference), truth);
  }
}

// exact_d >= 0 skips the per-shard estimate exchange entirely (it is a
// valid upper bound for every shard); the difference is unchanged and no
// estimator bytes move.
TEST(ShardedSession, ExactDSkipsPerShardEstimates) {
  const SetPair pair = GenerateTwoSidedPair(1000, 10, 12, 32, 0x777);
  SessionConfig config = BaseConfig("pbs");
  config.keyspace_shards = 4;
  config.exact_d = 22.0;  // d per shard is at most the total d.
  const SessionResult result = RunLoopbackSession(config, pair.a, pair.b);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(Sorted(result.outcome.difference), Sorted(pair.truth_diff));
  EXPECT_EQ(result.outcome.estimator_bytes, 0u);
}

// A responder configured with a smaller (>= 2) shard count clamps the
// initiator's proposal; the initiator re-derives its plan and the session
// runs at the clamped count.
TEST(ShardedSession, ResponderClampsShardCount) {
  const SetPair pair = GenerateTwoSidedPair(1500, 20, 25, 32, 0xC4A);
  SessionConfig config = BaseConfig("pbs");
  config.keyspace_shards = 64;
  SessionConfig local;
  local.keyspace_shards = 4;
  SessionEngine initiator = SessionEngine::Initiator(config, pair.a);
  SessionEngine responder = SessionEngine::Responder(
      local, std::make_shared<const std::vector<uint64_t>>(pair.b));
  PumpEngines(&initiator, &responder, [] { return size_t{1 << 16}; });
  ASSERT_EQ(initiator.Status(), SessionStatus::kDone)
      << initiator.result().error;
  const SessionResult result = initiator.TakeResult();
  EXPECT_EQ(Sorted(result.outcome.difference), Sorted(pair.truth_diff));
  EXPECT_NE(result.outcome.params_summary.find("shards=4"), std::string::npos)
      << result.outcome.params_summary;
}

// A responder with a LARGER local count must not clamp (clamping only
// ever shrinks the proposal).
TEST(ShardedSession, ResponderNeverRaisesShardCount) {
  const SetPair pair = GenerateTwoSidedPair(1000, 8, 9, 32, 0x123);
  SessionConfig config = BaseConfig("pbs");
  config.keyspace_shards = 4;
  SessionConfig local;
  local.keyspace_shards = 256;
  SessionEngine initiator = SessionEngine::Initiator(config, pair.a);
  SessionEngine responder = SessionEngine::Responder(
      local, std::make_shared<const std::vector<uint64_t>>(pair.b));
  PumpEngines(&initiator, &responder, [] { return size_t{1 << 16}; });
  ASSERT_EQ(initiator.Status(), SessionStatus::kDone)
      << initiator.result().error;
  const SessionResult result = initiator.TakeResult();
  EXPECT_EQ(Sorted(result.outcome.difference), Sorted(pair.truth_diff));
  EXPECT_NE(result.outcome.params_summary.find("shards=4"), std::string::npos)
      << result.outcome.params_summary;
}

// Out-of-range shard counts are a configuration error, surfaced before
// any bytes move.
TEST(ShardedSession, OutOfRangeShardCountFailsFast) {
  SessionConfig config = BaseConfig("pbs");
  config.keyspace_shards = 5000;  // > kMaxKeyspaceShards.
  SessionEngine initiator = SessionEngine::Initiator(config, {1, 2, 3});
  EXPECT_EQ(initiator.Status(), SessionStatus::kError);
}

// A mutable store's incrementally maintained shard checksums are adopted
// when (shard_count, seed) match the negotiated session -- and the
// difference is identical to the streaming path either way.
TEST(ShardedSession, StoreShardChecksumsAdoptedWhenMatching) {
  const SetPair pair = GenerateTwoSidedPair(1500, 20, 25, 32, 0xC4A);
  const std::vector<uint64_t> truth = Sorted(pair.truth_diff);
  SessionConfig config = BaseConfig("pbs");
  config.keyspace_shards = 16;

  for (bool matching : {true, false}) {
    SCOPED_TRACE(matching ? "matching config" : "mismatched seed");
    auto store = std::make_shared<MutableElementStore>(pair.b);
    std::string error;
    ASSERT_TRUE(store->ConfigureShardChecksums(
        16, matching ? config.seed : config.seed ^ 1, &error))
        << error;
    SessionConfig local;
    SessionEngine initiator = SessionEngine::Initiator(config, pair.a);
    SessionEngine responder =
        SessionEngine::Responder(local, store->snapshot(), store);
    PumpEngines(&initiator, &responder, [] { return size_t{1 << 16}; });
    ASSERT_EQ(initiator.Status(), SessionStatus::kDone)
        << initiator.result().error;
    EXPECT_EQ(Sorted(initiator.TakeResult().outcome.difference), truth);
  }
}

// The store's incremental checksums stay correct across churn: after
// mutations, a session against the new snapshot still recovers the right
// difference (the snapshot's adopted leaves reflect the mutated set).
TEST(ShardedSession, StoreChecksumsTrackMutations) {
  const SetPair pair = GenerateTwoSidedPair(1200, 10, 10, 32, 0x5A5);
  SessionConfig config = BaseConfig("pbs");
  config.keyspace_shards = 8;

  auto store = std::make_shared<MutableElementStore>(pair.b);
  std::string error;
  ASSERT_TRUE(store->ConfigureShardChecksums(8, config.seed, &error)) << error;
  // Mutate: remove one of B's exclusive elements and add one of A's.
  std::vector<uint64_t> b_only, a_only;
  for (uint64_t e : pair.b) {
    if (std::find(pair.a.begin(), pair.a.end(), e) == pair.a.end()) {
      b_only.push_back(e);
    }
  }
  for (uint64_t e : pair.a) {
    if (std::find(pair.b.begin(), pair.b.end(), e) == pair.b.end()) {
      a_only.push_back(e);
    }
  }
  ASSERT_FALSE(b_only.empty());
  ASSERT_FALSE(a_only.empty());
  ASSERT_TRUE(store->ApplyDelete(b_only[0]));
  ASSERT_TRUE(store->ApplyInsert(a_only[0]));
  store->Publish();

  // Ground truth against the mutated B.
  auto snapshot = store->snapshot();
  std::vector<uint64_t> truth;
  for (uint64_t e : pair.a) {
    if (std::find(snapshot->elements->begin(), snapshot->elements->end(), e) ==
        snapshot->elements->end()) {
      truth.push_back(e);
    }
  }
  for (uint64_t e : *snapshot->elements) {
    if (std::find(pair.a.begin(), pair.a.end(), e) == pair.a.end()) {
      truth.push_back(e);
    }
  }

  SessionConfig local;
  SessionEngine initiator = SessionEngine::Initiator(config, pair.a);
  SessionEngine responder = SessionEngine::Responder(local, snapshot, store);
  PumpEngines(&initiator, &responder, [] { return size_t{1 << 16}; });
  ASSERT_EQ(initiator.Status(), SessionStatus::kDone)
      << initiator.result().error;
  EXPECT_EQ(Sorted(initiator.TakeResult().outcome.difference), Sorted(truth));
}

// Wire economy: when a large set differs in only a couple of shards, the
// pre-filter lets the sharded session skip the ToW sketch exchange
// entirely (the diff bitmap already bounds the damage), while the
// monolithic session must sketch the full million-element set. The
// leaves + skipped-estimate total undercuts the monolithic sketch.
// Pinned here at 10^6 scale; bench_sharded_sync sweeps it further.
TEST(ShardedSession, CheaperThanMonolithicWhenMostShardsIdentical) {
  const SetPair pair = GenerateTwoSidedPair(1000000, 1, 1, 48, 0xEC0);
  SessionConfig mono = BaseConfig("pbs");
  mono.options.sig_bits = 48;
  const SessionResult mono_result = RunLoopbackSession(mono, pair.a, pair.b);
  ASSERT_TRUE(mono_result.ok) << mono_result.error;

  SessionConfig config = BaseConfig("pbs");
  config.options.sig_bits = 48;
  config.keyspace_shards = 16;
  const SessionResult sharded = RunLoopbackSession(config, pair.a, pair.b);
  ASSERT_TRUE(sharded.ok) << sharded.error;
  // The skip path never ships a sketch: estimator bytes must be zero.
  EXPECT_EQ(sharded.outcome.estimator_bytes, 0u);
  EXPECT_GT(mono_result.outcome.estimator_bytes, 0u);
  EXPECT_EQ(Sorted(sharded.outcome.difference),
            Sorted(mono_result.outcome.difference));
  EXPECT_LT(sharded.outcome.wire_bytes, mono_result.outcome.wire_bytes)
      << "sharded " << sharded.outcome.wire_bytes << " vs monolithic "
      << mono_result.outcome.wire_bytes;
}

}  // namespace
}  // namespace pbs
