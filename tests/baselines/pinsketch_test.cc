#include "pbs/baselines/pinsketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "pbs/sim/workload.h"

namespace pbs {
namespace {

bool Matches(std::vector<uint64_t> got, std::vector<uint64_t> want) {
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  return got == want;
}

TEST(PinSketch, IdenticalSets) {
  SetPair pair = GenerateSetPair(2000, 0, 32, 1);
  auto out = PinSketchReconcile(pair.a, pair.b, 5, 32, 1);
  EXPECT_TRUE(out.success);
  EXPECT_TRUE(out.difference.empty());
}

class PinSketchSweep : public ::testing::TestWithParam<int> {};

TEST_P(PinSketchSweep, ExactRecoveryWithinCapacity) {
  const int d = GetParam();
  SetPair pair = GenerateSetPair(std::max(2000, 3 * d), d, 32, 10 + d);
  const int t = static_cast<int>(std::ceil(1.38 * d));
  auto out = PinSketchReconcile(pair.a, pair.b, t, 32, d);
  ASSERT_TRUE(out.success);
  EXPECT_TRUE(Matches(out.difference, pair.truth_diff));
}

INSTANTIATE_TEST_SUITE_P(Ds, PinSketchSweep,
                         ::testing::Values(1, 3, 10, 50, 200));

TEST(PinSketch, WireSizeIsTLogU) {
  SetPair pair = GenerateSetPair(1000, 10, 32, 3);
  auto out = PinSketchReconcile(pair.a, pair.b, 14, 32, 3);
  EXPECT_EQ(out.data_bytes, 14u * 32 / 8);
}

TEST(PinSketch, OverCapacityDetected) {
  SetPair pair = GenerateSetPair(2000, 40, 32, 5);
  auto out = PinSketchReconcile(pair.a, pair.b, 10, 32, 5);
  EXPECT_FALSE(out.success);
}

TEST(PinSketch, CommunicationNearOptimal) {
  // 1.38x the minimum: the paper's Figure 1b observation.
  const int d = 100;
  SetPair pair = GenerateSetPair(5000, d, 32, 7);
  const int t = static_cast<int>(std::ceil(1.38 * d));
  auto out = PinSketchReconcile(pair.a, pair.b, t, 32, 7);
  ASSERT_TRUE(out.success);
  const double ratio = static_cast<double>(out.data_bytes) / (d * 4.0);
  EXPECT_NEAR(ratio, 1.38, 0.02);
}

TEST(PinSketch, TwoSidedDifference) {
  SetPair pair = GenerateTwoSidedPair(1500, 12, 9, 32, 9);
  auto out = PinSketchReconcile(pair.a, pair.b, 30, 32, 9);
  ASSERT_TRUE(out.success);
  EXPECT_TRUE(Matches(out.difference, pair.truth_diff));
}

}  // namespace
}  // namespace pbs
