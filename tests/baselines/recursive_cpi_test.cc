#include "pbs/baselines/recursive_cpi.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "pbs/sim/workload.h"

namespace pbs {
namespace {

bool Matches(std::vector<uint64_t> got, std::vector<uint64_t> want) {
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  return got == want;
}

TEST(RecursiveCpi, IdenticalSetsOneRound) {
  SetPair pair = GenerateSetPair(2000, 0, 32, 1);
  auto out = RecursiveCpiReconcile(pair.a, pair.b, 5, 32, 32, 1);
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.rounds, 1);
  EXPECT_TRUE(out.difference.empty());
}

TEST(RecursiveCpi, SmallDifferenceWithinCapacityOneRound) {
  SetPair pair = GenerateSetPair(2000, 4, 32, 2);
  auto out = RecursiveCpiReconcile(pair.a, pair.b, 5, 32, 32, 2);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.rounds, 1);
  EXPECT_TRUE(Matches(out.difference, pair.truth_diff));
}

class RecursiveCpiSweep : public ::testing::TestWithParam<int> {};

TEST_P(RecursiveCpiSweep, ConvergesToExactDifference) {
  const int d = GetParam();
  SetPair pair = GenerateSetPair(std::max(2000, 3 * d), d, 32, 3 + d);
  auto out = RecursiveCpiReconcile(pair.a, pair.b, 5, 32, 40, 3);
  ASSERT_TRUE(out.success) << "d=" << d;
  EXPECT_TRUE(Matches(out.difference, pair.truth_diff));
}

INSTANTIATE_TEST_SUITE_P(Ds, RecursiveCpiSweep,
                         ::testing::Values(1, 10, 50, 200, 800));

TEST(RecursiveCpi, RoundsGrowLogarithmically) {
  // The Section-7 claim PBS improves on: O(log d) rounds of exchange.
  double prev_rounds = 0;
  for (int d : {8, 64, 512}) {
    SetPair pair = GenerateSetPair(4 * d, d, 32, 100 + d);
    auto out = RecursiveCpiReconcile(pair.a, pair.b, 5, 32, 40, 5);
    ASSERT_TRUE(out.success);
    EXPECT_GE(out.rounds, prev_rounds) << "d=" << d;
    // Within a couple of rounds of log2(d / t-bar) + constant.
    EXPECT_LE(out.rounds, std::log2(d) + 4) << "d=" << d;
    prev_rounds = out.rounds;
  }
}

TEST(RecursiveCpi, NeedsMoreRoundsThanPbsTarget) {
  // At d = 500 the recursion needs well over the r = 3 PBS budget.
  SetPair pair = GenerateSetPair(2000, 500, 32, 7);
  auto capped = RecursiveCpiReconcile(pair.a, pair.b, 5, 32, 3, 7);
  EXPECT_FALSE(capped.success);
  auto uncapped = RecursiveCpiReconcile(pair.a, pair.b, 5, 32, 40, 7);
  EXPECT_TRUE(uncapped.success);
  EXPECT_GT(uncapped.rounds, 3);
}

TEST(RecursiveCpi, TwoSidedDifference) {
  SetPair pair = GenerateTwoSidedPair(1500, 30, 20, 32, 9);
  auto out = RecursiveCpiReconcile(pair.a, pair.b, 5, 32, 40, 9);
  ASSERT_TRUE(out.success);
  EXPECT_TRUE(Matches(out.difference, pair.truth_diff));
}

}  // namespace
}  // namespace pbs
