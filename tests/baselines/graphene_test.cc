#include "pbs/baselines/graphene.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "pbs/sim/workload.h"

namespace pbs {
namespace {

bool Matches(std::vector<uint64_t> got, std::vector<uint64_t> want) {
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  return got == want;
}

TEST(Graphene, IdenticalSets) {
  SetPair pair = GenerateSetPair(2000, 0, 32, 1);
  auto out = GrapheneReconcile(pair.a, pair.b, 1, 32, 1);
  EXPECT_TRUE(out.success);
  EXPECT_TRUE(out.difference.empty());
}

class GrapheneSweep : public ::testing::TestWithParam<int> {};

TEST_P(GrapheneSweep, RecoversSubsetDifference) {
  const int d = GetParam();
  int ok = 0;
  constexpr int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    SetPair pair =
        GenerateSetPair(std::max(5000, 4 * d), d, 32, 7 * d + trial);
    auto out = GrapheneReconcile(pair.a, pair.b, d, 32, trial);
    if (out.success && Matches(out.difference, pair.truth_diff)) ++ok;
  }
  EXPECT_GE(ok, 9) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Ds, GrapheneSweep,
                         ::testing::Values(10, 100, 500));

TEST(Graphene, SmallDUsesBloomFilterAndBeatsDDigestSizing) {
  // With |B| huge relative to d... actually with small d relative to |B|
  // the BF is NOT worth it (its size is O(|B|)); Graphene should go
  // IBF-only and cost about what D.Digest costs.
  const int d = 20;
  SetPair pair = GenerateSetPair(50000, d, 32, 3);
  auto out = GrapheneReconcile(pair.a, pair.b, d, 32, 3);
  ASSERT_TRUE(out.success);
  // IBF-only: ~ cells * 12 bytes with cells ~ 1.7d + slack.
  EXPECT_LT(out.data_bytes, 3000u);
}

TEST(Graphene, LargeDRelativeToSetUsesBloomFilter) {
  // When d is a sizable fraction of |A|, the BF pays for itself: total
  // bytes should drop well below the IBF-only cost of ~ 1.7 * d * 12.
  const int d = 5000;
  SetPair pair = GenerateSetPair(20000, d, 32, 5);
  auto out = GrapheneReconcile(pair.a, pair.b, d, 32, 5);
  ASSERT_TRUE(out.success);
  const double ibf_only_estimate = 1.7 * d * 12.0;
  EXPECT_LT(static_cast<double>(out.data_bytes), ibf_only_estimate);
}

TEST(Graphene, SuccessRateMeetsHighTarget) {
  // Section 8.2 target: 239/240. Check a batch comfortably exceeds ~0.99.
  int ok = 0;
  constexpr int kTrials = 60;
  for (int trial = 0; trial < kTrials; ++trial) {
    SetPair pair = GenerateSetPair(8000, 100, 32, 900 + trial);
    auto out = GrapheneReconcile(pair.a, pair.b, 100, 32, trial * 13);
    if (out.success && Matches(out.difference, pair.truth_diff)) ++ok;
  }
  EXPECT_GE(ok, kTrials - 1);
}

}  // namespace
}  // namespace pbs
