#include "pbs/baselines/pinsketch_wp.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "pbs/sim/workload.h"

namespace pbs {
namespace {

bool Matches(std::vector<uint64_t> got, std::vector<uint64_t> want) {
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  return got == want;
}

TEST(PinSketchWp, IdenticalSets) {
  SetPair pair = GenerateSetPair(2000, 0, 32, 1);
  auto out = PinSketchWpReconcile(pair.a, pair.b, 0, 5, 13, 32, 3, 1);
  EXPECT_TRUE(out.success);
  EXPECT_TRUE(out.difference.empty());
}

class PinSketchWpSweep : public ::testing::TestWithParam<int> {};

TEST_P(PinSketchWpSweep, RecoversDifference) {
  const int d = GetParam();
  int ok = 0;
  constexpr int kTrials = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    SetPair pair =
        GenerateSetPair(std::max(2000, 4 * d), d, 32, 13 * d + trial);
    auto out =
        PinSketchWpReconcile(pair.a, pair.b, d, 5, 13, 32, 3, trial);
    if (out.success) {
      EXPECT_TRUE(Matches(out.difference, pair.truth_diff)) << "d=" << d;
      ++ok;
    }
  }
  EXPECT_GE(ok, kTrials - 1) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Ds, PinSketchWpSweep,
                         ::testing::Values(5, 25, 100, 500));

TEST(PinSketchWp, CommunicationExceedsPbsMarginRatio) {
  // Per-group overhead: sketch t*32 bits vs PBS's t*log n. With t=13 and
  // g = d/5 groups, PinSketch/WP costs >= g * t * 32 bits.
  const int d = 250;
  SetPair pair = GenerateSetPair(5000, d, 32, 3);
  auto out = PinSketchWpReconcile(pair.a, pair.b, d, 5, 13, 32, 3, 3);
  ASSERT_TRUE(out.success);
  EXPECT_GE(out.data_bytes, static_cast<size_t>(d / 5) * 13 * 32 / 8);
}

TEST(PinSketchWp, ReportSigBitsScalesAccounting) {
  const int d = 100;
  SetPair pair = GenerateSetPair(3000, d, 32, 5);
  auto out32 = PinSketchWpReconcile(pair.a, pair.b, d, 5, 13, 32, 3, 5, 0);
  auto out256 =
      PinSketchWpReconcile(pair.a, pair.b, d, 5, 13, 32, 3, 5, 256);
  ASSERT_TRUE(out32.success);
  ASSERT_TRUE(out256.success);
  // Appendix J.3: at 256-bit signatures everything scales by ~8x.
  EXPECT_NEAR(static_cast<double>(out256.data_bytes) / out32.data_bytes, 8.0,
              0.5);
}

TEST(PinSketchWp, SplitsHandleOverloadedGroups) {
  // Underestimate d so several groups exceed t; splits must still converge
  // given enough rounds.
  SetPair pair = GenerateSetPair(4000, 120, 32, 7);
  auto out = PinSketchWpReconcile(pair.a, pair.b, 30, 5, 13, 32, 8, 7);
  EXPECT_TRUE(out.success);
  EXPECT_TRUE(Matches(out.difference, pair.truth_diff));
}

}  // namespace
}  // namespace pbs
