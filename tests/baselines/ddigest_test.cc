#include "pbs/baselines/ddigest.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "pbs/sim/workload.h"

namespace pbs {
namespace {

bool Matches(std::vector<uint64_t> got, std::vector<uint64_t> want) {
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  return got == want;
}

TEST(DDigest, IdenticalSets) {
  SetPair pair = GenerateSetPair(2000, 0, 32, 1);
  auto out = DDigestReconcile(pair.a, pair.b, 1, 32, 1);
  EXPECT_TRUE(out.success);
  EXPECT_TRUE(out.difference.empty());
}

class DDigestSweep : public ::testing::TestWithParam<int> {};

TEST_P(DDigestSweep, UsuallyRecoversAtPaperSizing) {
  const int d = GetParam();
  int ok = 0;
  constexpr int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    SetPair pair =
        GenerateSetPair(std::max(2000, 3 * d), d, 32, 100 * d + trial);
    auto out = DDigestReconcile(pair.a, pair.b, d, 32, trial);
    if (out.success && Matches(out.difference, pair.truth_diff)) ++ok;
  }
  EXPECT_GE(ok, 8) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Ds, DDigestSweep,
                         ::testing::Values(10, 50, 300, 1000));

TEST(DDigest, WireSizeRoughlySixTimesMinimum) {
  const int d = 100;
  SetPair pair = GenerateSetPair(2000, d, 32, 3);
  auto out = DDigestReconcile(pair.a, pair.b, d, 32, 3);
  const double ratio = static_cast<double>(out.data_bytes) / (d * 4.0);
  EXPECT_NEAR(ratio, 6.0, 0.3);
}

TEST(DDigest, UndersizedFilterFailsHonestly) {
  SetPair pair = GenerateSetPair(3000, 200, 32, 5);
  auto out = DDigestReconcile(pair.a, pair.b, 20, 32, 5);
  EXPECT_FALSE(out.success);
}

TEST(DDigest, TwoSidedDifference) {
  SetPair pair = GenerateTwoSidedPair(2000, 15, 10, 32, 7);
  auto out = DDigestReconcile(pair.a, pair.b, 25, 32, 7);
  ASSERT_TRUE(out.success);
  EXPECT_TRUE(Matches(out.difference, pair.truth_diff));
}

}  // namespace
}  // namespace pbs
