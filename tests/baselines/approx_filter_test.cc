#include "pbs/baselines/approx_filter.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "pbs/sim/workload.h"

namespace pbs {
namespace {

class ApproxBothKinds : public ::testing::TestWithParam<FilterKind> {};

TEST_P(ApproxBothKinds, HighRecallAtLowFpr) {
  SetPair pair = GenerateTwoSidedPair(5000, 100, 80, 32, 1);
  auto out = ApproxFilterReconcile(pair.a, pair.b, GetParam(), 0.001, 7);
  out.recall = EvaluateRecall(out, pair.truth_diff);
  EXPECT_GE(out.recall, 0.95);
}

TEST_P(ApproxBothKinds, NoFalseDifferences) {
  // Everything reported must truly be a difference (filters have no false
  // negatives, so common elements are never reported).
  SetPair pair = GenerateTwoSidedPair(3000, 40, 40, 32, 2);
  auto out = ApproxFilterReconcile(pair.a, pair.b, GetParam(), 0.01, 9);
  std::unordered_set<uint64_t> truth(pair.truth_diff.begin(),
                                     pair.truth_diff.end());
  for (uint64_t e : out.estimated_diff) {
    EXPECT_TRUE(truth.count(e)) << e;
  }
}

TEST_P(ApproxBothKinds, UnderestimationAtHighFpr) {
  // The Section-7 point: with a loose filter the scheme misses a
  // noticeable share of real differences.
  SetPair pair = GenerateTwoSidedPair(20000, 400, 400, 32, 3);
  auto out = ApproxFilterReconcile(pair.a, pair.b, GetParam(), 0.10, 11);
  const double recall = EvaluateRecall(out, pair.truth_diff);
  EXPECT_LT(recall, 0.995);  // Imperfect...
  EXPECT_GT(recall, 0.5);    // ...but not useless.
}

INSTANTIATE_TEST_SUITE_P(Kinds, ApproxBothKinds,
                         ::testing::Values(FilterKind::kBloom,
                                           FilterKind::kCuckoo),
                         [](const auto& info) {
                           return info.param == FilterKind::kBloom ? "Bloom"
                                                                   : "Cuckoo";
                         });

TEST(ApproxFilter, TighterFprImprovesRecallAndCostsBytes) {
  SetPair pair = GenerateTwoSidedPair(10000, 200, 200, 32, 4);
  auto loose = ApproxFilterReconcile(pair.a, pair.b, FilterKind::kBloom,
                                     0.05, 13);
  auto tight = ApproxFilterReconcile(pair.a, pair.b, FilterKind::kBloom,
                                     0.001, 13);
  EXPECT_GE(EvaluateRecall(tight, pair.truth_diff),
            EvaluateRecall(loose, pair.truth_diff));
  EXPECT_GT(tight.data_bytes, loose.data_bytes);
}

TEST(ApproxFilter, FilterCostScalesWithSetsNotDifference) {
  // The structural reason exact schemes win when d << |A|: filter bytes
  // are O(|A| + |B|) regardless of d.
  SetPair small_d = GenerateSetPair(20000, 10, 32, 5);
  SetPair large_d = GenerateSetPair(20000, 1000, 32, 6);
  auto a = ApproxFilterReconcile(small_d.a, small_d.b, FilterKind::kBloom,
                                 0.01, 15);
  auto b = ApproxFilterReconcile(large_d.a, large_d.b, FilterKind::kBloom,
                                 0.01, 15);
  EXPECT_NEAR(static_cast<double>(a.data_bytes), b.data_bytes,
              0.05 * a.data_bytes);
}

TEST(ApproxFilter, RecallOfEmptyTruthIsOne) {
  SetPair pair = GenerateSetPair(1000, 0, 32, 7);
  auto out =
      ApproxFilterReconcile(pair.a, pair.b, FilterKind::kCuckoo, 0.01, 17);
  EXPECT_EQ(EvaluateRecall(out, pair.truth_diff), 1.0);
}

}  // namespace
}  // namespace pbs
