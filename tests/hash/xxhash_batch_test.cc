// Differential tests for the lane-batched xxHash64 kernel and the batch
// partition helpers built on it: every batched form must be bit-identical
// to its scalar counterpart for every count (full lanes, ragged tails,
// zero), with and without output aliasing.

#include "pbs/hash/xxhash64.h"

#include <gtest/gtest.h>

#include <vector>

#include "pbs/common/rng.h"
#include "pbs/core/group_state.h"
#include "pbs/core/parity_bitmap.h"
#include "pbs/hash/hash_family.h"

namespace pbs {
namespace {

TEST(HashBatchDiff, SharedSeedBatchMatchesScalar) {
  Xoshiro256 rng(0xBA7C4);
  for (size_t count = 0; count <= 64; ++count) {
    const uint64_t seed = rng.Next();
    std::vector<uint64_t> xs(count), out(count, ~uint64_t{0});
    for (auto& x : xs) x = rng.Next();
    XxHash64Batch(xs.data(), count, seed, out.data());
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[i], XxHash64(xs[i], seed))
          << "count=" << count << " i=" << i;
    }
  }
}

TEST(HashBatchDiff, PerLaneSeedBatchMatchesScalar) {
  Xoshiro256 rng(0x5EED5);
  for (size_t count = 0; count <= 64; ++count) {
    std::vector<uint64_t> xs(count), seeds(count), out(count, ~uint64_t{0});
    for (auto& x : xs) x = rng.Next();
    for (auto& s : seeds) s = rng.Next();
    XxHash64Batch(xs.data(), seeds.data(), count, out.data());
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[i], XxHash64(xs[i], seeds[i]))
          << "count=" << count << " i=" << i;
    }
  }
}

TEST(HashBatchDiff, OutputMayAliasInput) {
  Xoshiro256 rng(0xA11A5);
  const uint64_t seed = rng.Next();
  std::vector<uint64_t> xs(37), expect(37);
  for (auto& x : xs) x = rng.Next();
  for (size_t i = 0; i < xs.size(); ++i) expect[i] = XxHash64(xs[i], seed);
  XxHash64Batch(xs.data(), xs.size(), seed, xs.data());  // In place.
  EXPECT_EQ(xs, expect);
}

TEST(HashBatchDiff, BucketManyMatchesBucket) {
  Xoshiro256 rng(0xB0C4E7);
  const SaltedHash h(rng.Next());
  for (uint64_t buckets : {1ull, 3ull, 7ull, 255ull, 2047ull, 1000000ull}) {
    std::vector<uint64_t> xs(29), out(29);
    for (auto& x : xs) x = rng.Next();
    h.BucketMany(xs.data(), xs.size(), buckets, out.data());
    for (size_t i = 0; i < xs.size(); ++i) {
      ASSERT_EQ(out[i], h.Bucket(xs[i], buckets)) << "buckets=" << buckets;
    }
  }
}

TEST(HashBatchDiff, GroupOfManyMatchesGroupOf) {
  Xoshiro256 rng(0x96011F);
  const HashFamily family(rng.Next());
  std::vector<uint64_t> xs(61), out(61);
  for (auto& x : xs) x = rng.Next();
  for (uint32_t g : {1u, 2u, 5u, 32u, 1000u}) {
    GroupOfMany(family, xs.data(), xs.size(), g, out.data());
    for (size_t i = 0; i < xs.size(); ++i) {
      ASSERT_EQ(out[i], GroupOf(family, xs[i], g)) << "g=" << g;
    }
  }
}

TEST(HashBatchDiff, BinIndexManyMatchesBinIndex) {
  Xoshiro256 rng(0xB191DE);
  const SaltedHash h(rng.Next());
  const int n = 2047;
  std::vector<uint64_t> xs(45), out(45);
  for (auto& x : xs) x = rng.Next();
  BinIndexMany(xs.data(), xs.size(), h, n, out.data());
  for (size_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(out[i], BinIndex(xs[i], h, n));
    ASSERT_GE(out[i], 1u);
    ASSERT_LE(out[i], static_cast<uint64_t>(n));
  }
}

TEST(HashBatchDiff, BinIndexManySaltedMatchesPerSaltScalar) {
  Xoshiro256 rng(0x5A17ED);
  const int n = 255;
  std::vector<uint64_t> xs(45), salts(45), out(45);
  for (auto& x : xs) x = rng.Next();
  for (auto& s : salts) s = rng.Next();
  BinIndexManySalted(xs.data(), salts.data(), xs.size(), n, out.data());
  for (size_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(out[i], BinIndex(xs[i], SaltedHash(salts[i]), n));
  }
}

}  // namespace
}  // namespace pbs
