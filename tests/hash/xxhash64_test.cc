#include "pbs/hash/xxhash64.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

namespace pbs {
namespace {

// Canonical test vector from the xxHash specification.
TEST(XxHash64, EmptyInputSeedZero) {
  EXPECT_EQ(XxHash64(nullptr, 0, 0), 0xEF46DB3751D8E999ull);
}

TEST(XxHash64, DeterministicAcrossCalls) {
  const std::string data = "parity bitmap sketch";
  EXPECT_EQ(XxHash64(data.data(), data.size(), 7),
            XxHash64(data.data(), data.size(), 7));
}

TEST(XxHash64, SeedChangesDigest) {
  const std::string data = "set reconciliation";
  EXPECT_NE(XxHash64(data.data(), data.size(), 1),
            XxHash64(data.data(), data.size(), 2));
}

TEST(XxHash64, AllInputLengthsConsistent) {
  // Exercise every code path: <4, <8, <32, and >=32-byte inputs, including
  // the stripe loop plus each tail branch.
  std::vector<uint8_t> buf(100);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<uint8_t>(i * 7);
  std::vector<uint64_t> digests;
  for (size_t len = 0; len <= buf.size(); ++len) {
    digests.push_back(XxHash64(buf.data(), len, 0));
  }
  // All prefixes must hash differently (overwhelmingly likely).
  for (size_t i = 0; i < digests.size(); ++i) {
    for (size_t j = i + 1; j < digests.size(); ++j) {
      EXPECT_NE(digests[i], digests[j]) << "lengths " << i << " vs " << j;
    }
  }
}

TEST(XxHash64, IntegerOverloadMatchesByteHash) {
  const uint64_t v = 0x0123456789ABCDEFull;
  uint8_t bytes[8];
  std::memcpy(bytes, &v, 8);
  EXPECT_EQ(XxHash64(v, 99), XxHash64(bytes, 8, 99));
}

TEST(XxHash64, AvalancheOnSingleBitFlip) {
  // Flipping any input bit should change ~half the output bits.
  const uint64_t base = 0xABCDEF0123456789ull;
  const uint64_t h0 = XxHash64(base, 0);
  for (int bit = 0; bit < 64; ++bit) {
    const uint64_t h1 = XxHash64(base ^ (uint64_t{1} << bit), 0);
    const int flipped = __builtin_popcountll(h0 ^ h1);
    EXPECT_GE(flipped, 12) << "bit " << bit;
    EXPECT_LE(flipped, 52) << "bit " << bit;
  }
}

TEST(XxHash64, BucketUniformity) {
  constexpr int kBuckets = 64;
  constexpr int kSamples = 64000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[XxHash64(static_cast<uint64_t>(i), 5) % kBuckets];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 6 * std::sqrt(expected));
  }
}

}  // namespace
}  // namespace pbs
