#include "pbs/hash/hash_family.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace pbs {
namespace {

TEST(SaltedHash, BucketInRange) {
  SaltedHash h(123);
  for (uint64_t x = 0; x < 10000; ++x) {
    EXPECT_LT(h.Bucket(x, 7), 7u);
  }
}

TEST(SaltedHash, BucketUniform) {
  SaltedHash h(55);
  constexpr uint64_t kBuckets = 16;
  constexpr int kSamples = 160000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[h.Bucket(i, kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) EXPECT_NEAR(c, expected, 6 * std::sqrt(expected));
}

TEST(HashFamily, SameSeedSameSalts) {
  HashFamily f1(42), f2(42);
  EXPECT_EQ(f1.Salt(HashFamily::kBinPartition, 1, 2),
            f2.Salt(HashFamily::kBinPartition, 1, 2));
}

TEST(HashFamily, DistinctRolesGiveDistinctSalts) {
  HashFamily f(42);
  std::set<uint64_t> salts;
  for (auto role :
       {HashFamily::kGroupPartition, HashFamily::kBinPartition,
        HashFamily::kSplitPartition, HashFamily::kEstimator, HashFamily::kIbf,
        HashFamily::kBloom, HashFamily::kStrata}) {
    EXPECT_TRUE(salts.insert(f.Salt(role)).second);
  }
}

TEST(HashFamily, DistinctIndicesGiveDistinctSalts) {
  HashFamily f(42);
  std::set<uint64_t> salts;
  for (uint64_t round = 0; round < 20; ++round) {
    for (uint64_t unit = 0; unit < 50; ++unit) {
      EXPECT_TRUE(
          salts.insert(f.Salt(HashFamily::kBinPartition, round, unit)).second)
          << "round " << round << " unit " << unit;
    }
  }
}

TEST(HashFamily, PerRoundHashesAreIndependent) {
  // The multi-round correctness of Section 2.4 requires that two elements
  // colliding under round k's hash are unlikely to collide under round k+1's.
  HashFamily f(7);
  SaltedHash h1 = f.Get(HashFamily::kBinPartition, 1, 0);
  SaltedHash h2 = f.Get(HashFamily::kBinPartition, 2, 0);
  constexpr uint64_t kBins = 127;
  int both = 0, first = 0;
  for (uint64_t x = 1; x < 20000; ++x) {
    const bool c1 = h1.Bucket(x, kBins) == h1.Bucket(x + 20000, kBins);
    const bool c2 = h2.Bucket(x, kBins) == h2.Bucket(x + 20000, kBins);
    if (c1) ++first;
    if (c1 && c2) ++both;
  }
  // P[collide twice] ~ P[collide]^2; with ~157 first-round collisions we
  // expect ~1 double collision.
  EXPECT_GT(first, 100);
  EXPECT_LT(both, 12);
}

}  // namespace
}  // namespace pbs
