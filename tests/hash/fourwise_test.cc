#include "pbs/hash/fourwise.h"

#include <gtest/gtest.h>

#include <cmath>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

TEST(FourWiseHash, SignIsPlusMinusOne) {
  FourWiseHash h(1);
  for (uint64_t x = 0; x < 1000; ++x) {
    const int s = h.Sign(x);
    EXPECT_TRUE(s == 1 || s == -1);
  }
}

TEST(FourWiseHash, Deterministic) {
  FourWiseHash h1(9), h2(9);
  for (uint64_t x = 0; x < 100; ++x) EXPECT_EQ(h1.Sign(x), h2.Sign(x));
}

TEST(FourWiseHash, BalancedSigns) {
  FourWiseHash h(1234);
  int sum = 0;
  constexpr int kSamples = 100000;
  for (int x = 1; x <= kSamples; ++x) sum += h.Sign(x);
  // Mean 0, stddev sqrt(kSamples) ~ 316.
  EXPECT_LT(std::abs(sum), 5 * 316);
}

TEST(FourWiseHash, PairwiseProductsAverageToZero) {
  // E[f(x) f(y)] = 0 for x != y -- the property the ToW unbiasedness proof
  // needs. Average over many independent hash functions at fixed x, y.
  SplitMix64 seeds(5);
  int sum = 0;
  constexpr int kFunctions = 20000;
  for (int i = 0; i < kFunctions; ++i) {
    FourWiseHash h(seeds.Next());
    sum += h.Sign(123) * h.Sign(456);
  }
  EXPECT_LT(std::abs(sum), 5 * std::sqrt(kFunctions));
}

TEST(FourWiseHash, FourWiseProductsAverageToZero) {
  // E[f(x1) f(x2) f(x3) f(x4)] = 0 for distinct points -- the fourth-moment
  // property used in the variance proof (Appendix A).
  SplitMix64 seeds(17);
  int sum = 0;
  constexpr int kFunctions = 20000;
  for (int i = 0; i < kFunctions; ++i) {
    FourWiseHash h(seeds.Next());
    sum += h.Sign(1) * h.Sign(2) * h.Sign(3) * h.Sign(4);
  }
  EXPECT_LT(std::abs(sum), 5 * std::sqrt(kFunctions));
}

TEST(FourWiseHash, EvalStaysBelowPrime) {
  FourWiseHash h(77);
  for (uint64_t x = 0; x < 10000; ++x) {
    EXPECT_LT(h.Eval(x), FourWiseHash::kPrime);
  }
}

}  // namespace
}  // namespace pbs
