// ParallelFor pool: full index coverage, worker-index discipline, reuse
// across Run() calls, and the inline 1-thread path. The fork/join
// handshake and the atomic work claim are the pool's entire concurrency
// surface, so these tests double as the TSan target for it (CI runs
// Parallel.* under -fsanitize=thread).

#include "pbs/common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace pbs {
namespace {

TEST(Parallel, ResolveThreadsPassesThroughExplicitCounts) {
  EXPECT_EQ(ParallelFor::ResolveThreads(1), 1);
  EXPECT_EQ(ParallelFor::ResolveThreads(3), 3);
  EXPECT_EQ(ParallelFor::ResolveThreads(16), 16);
}

TEST(Parallel, ResolveThreadsZeroMeansHardwareConcurrency) {
  EXPECT_GE(ParallelFor::ResolveThreads(0), 1);
}

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  ParallelFor pool(4);
  EXPECT_EQ(pool.threads(), 4);
  constexpr size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.Run(kCount, [&](size_t i, int) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, WorkerIndexStaysInRange) {
  ParallelFor pool(3);
  std::atomic<bool> out_of_range{false};
  pool.Run(5000, [&](size_t, int worker) {
    if (worker < 0 || worker >= 3) out_of_range.store(true);
  });
  EXPECT_FALSE(out_of_range.load());
}

TEST(Parallel, PerWorkerAccumulationSumsCorrectly) {
  // The endpoint usage shape: every task writes only its own slot or its
  // worker's scratch; results are combined after the join.
  ParallelFor pool(4);
  constexpr size_t kCount = 4096;
  std::vector<uint64_t> per_worker(4, 0);
  pool.Run(kCount,
           [&](size_t i, int worker) { per_worker[worker] += i + 1; });
  uint64_t total = 0;
  for (uint64_t s : per_worker) total += s;
  EXPECT_EQ(total, kCount * (kCount + 1) / 2);
}

TEST(Parallel, ReusableAcrossManyRuns) {
  // The pool persists across rounds; hammer the fork/join handshake.
  ParallelFor pool(4);
  for (int run = 0; run < 200; ++run) {
    std::atomic<size_t> sum{0};
    pool.Run(64, [&](size_t i, int) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), size_t{64 * 63 / 2});
  }
}

TEST(Parallel, SingleThreadPoolRunsInlineOnCaller) {
  ParallelFor pool(1);
  EXPECT_EQ(pool.threads(), 1);
  std::vector<int> workers;
  pool.Run(16, [&](size_t, int worker) { workers.push_back(worker); });
  ASSERT_EQ(workers.size(), 16u);
  for (int w : workers) EXPECT_EQ(w, 0);
}

TEST(Parallel, CountZeroIsNoop) {
  ParallelFor pool(2);
  bool ran = false;
  pool.Run(0, [&](size_t, int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Parallel, CountOneRunsInlineWithoutWakingWorkers) {
  ParallelFor pool(4);
  int calls = 0;
  int seen_worker = -1;
  pool.Run(1, [&](size_t i, int worker) {
    ++calls;
    seen_worker = worker;
    EXPECT_EQ(i, 0u);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_worker, 0);
}

TEST(Parallel, ClampsNonPositiveThreadCounts) {
  ParallelFor pool(0);
  EXPECT_EQ(pool.threads(), 1);
  std::atomic<int> calls{0};
  pool.Run(8, [&](size_t, int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 8);
}

}  // namespace
}  // namespace pbs
