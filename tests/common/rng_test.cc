#include "pbs/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace pbs {
namespace {

TEST(SplitMix64, DeterministicFromSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, DeterministicFromSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256, BoundedValuesInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Xoshiro256, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, 5 * std::sqrt(kSamples / kBuckets));
  }
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xoshiro256, NoShortCycles) {
  Xoshiro256 rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(seen.insert(rng.Next()).second);
}

TEST(Xoshiro256, BoundedZeroReturnsZero) {
  Xoshiro256 rng(1);
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

}  // namespace
}  // namespace pbs
