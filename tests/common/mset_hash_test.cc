#include "pbs/common/mset_hash.h"

#include <gtest/gtest.h>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

TEST(MsetHash, EmptyHashesEqual) {
  EXPECT_TRUE(MsetHash(1) == MsetHash(1));
}

TEST(MsetHash, SaltSeparatesHashes) {
  MsetHash a(1), b(2);
  a.Add(42);
  b.Add(42);
  EXPECT_TRUE(a != b);
}

TEST(MsetHash, OrderIndependent) {
  MsetHash a(7), b(7);
  a.Add(1); a.Add(2); a.Add(3);
  b.Add(3); b.Add(1); b.Add(2);
  EXPECT_TRUE(a == b);
}

TEST(MsetHash, AddRemoveRoundTrips) {
  MsetHash a(7);
  const MsetHash empty(7);
  a.Add(100);
  a.Add(200);
  a.Remove(100);
  a.Remove(200);
  EXPECT_TRUE(a == empty);
}

TEST(MsetHash, MultiplicityMatters) {
  // {x, x} must hash differently from {} and from {x} -- the property the
  // plain XOR of hashes lacks.
  MsetHash once(3), twice(3), empty(3);
  once.Add(5);
  twice.Add(5);
  twice.Add(5);
  EXPECT_TRUE(once != twice);
  EXPECT_TRUE(twice != empty);
}

TEST(MsetHash, SymmetricDifferenceVerificationSemantics) {
  // The strong-verification identity: H(A) updated by toggling A triangle B
  // equals H(B).
  MsetHash ha(9), hb(9);
  const std::vector<uint64_t> a = {10, 20, 30, 40};
  const std::vector<uint64_t> b = {10, 20, 50};
  for (auto e : a) ha.Add(e);
  for (auto e : b) hb.Add(e);
  ha.Remove(30);
  ha.Remove(40);
  ha.Add(50);
  EXPECT_TRUE(ha == hb);
}

TEST(MsetHash, RandomSetsCollisionFree) {
  Xoshiro256 rng(11);
  MsetHash reference(5);
  for (int i = 0; i < 100; ++i) reference.Add(rng.Next());
  for (int trial = 0; trial < 500; ++trial) {
    MsetHash other(5);
    for (int i = 0; i < 100; ++i) other.Add(rng.Next());
    EXPECT_TRUE(other != reference);
  }
}

TEST(MsetHash, Fold64EqualStatesFoldEqual) {
  MsetHash a(7), b(7);
  a.Add(1); a.Add(2);
  b.Add(2); b.Add(1);
  EXPECT_EQ(a.Fold64(), b.Fold64());
}

TEST(MsetHash, Fold64SeparatesDistinctMultisets) {
  // The 64-bit fold is the sharded session's per-shard digest leaf; it
  // must keep distinguishing the full 192-bit states it compresses.
  Xoshiro256 rng(21);
  MsetHash reference(5);
  for (int i = 0; i < 50; ++i) reference.Add(rng.Next());
  const uint64_t folded = reference.Fold64();
  for (int trial = 0; trial < 500; ++trial) {
    MsetHash other(5);
    for (int i = 0; i < 50; ++i) other.Add(rng.Next());
    EXPECT_NE(other.Fold64(), folded);
  }
}

TEST(MsetHash, Fold64SensitiveToSalt) {
  MsetHash a(1), b(2);
  a.Add(42);
  b.Add(42);
  EXPECT_NE(a.Fold64(), b.Fold64());
}

TEST(MsetHash, ToggleMatchesAddRemove) {
  MsetHash toggled(3), explicit_ops(3);
  toggled.Toggle(10, true);
  toggled.Toggle(20, true);
  toggled.Toggle(10, false);
  explicit_ops.Add(10);
  explicit_ops.Add(20);
  explicit_ops.Remove(10);
  EXPECT_TRUE(toggled == explicit_ops);
  EXPECT_EQ(toggled.Fold64(), explicit_ops.Fold64());
}

TEST(MsetHash, Fold64EmptyIsStable) {
  EXPECT_EQ(MsetHash(9).Fold64(), MsetHash(9).Fold64());
  EXPECT_NE(MsetHash(9).Fold64(), MsetHash(8).Fold64());
}

TEST(MsetHash, ResetClearsState) {
  MsetHash a(1);
  a.Add(99);
  a.Reset();
  EXPECT_TRUE(a == MsetHash(1));
}

}  // namespace
}  // namespace pbs
