#include "pbs/common/merkle.h"

#include <gtest/gtest.h>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

std::vector<uint64_t> Leaves(size_t count, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> leaves(count);
  for (auto& leaf : leaves) leaf = rng.Next();
  return leaves;
}

TEST(MerkleTree, EmptyTreeHasSentinelRoot) {
  MerkleTree a({}), b({});
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.leaf_count(), 0u);
}

TEST(MerkleTree, SingleLeafRootIsLeafHash) {
  MerkleTree tree({42});
  EXPECT_EQ(tree.root(), MerkleTree::HashLeaf(42));
}

TEST(MerkleTree, RootIsDeterministic) {
  const auto leaves = Leaves(100, 1);
  EXPECT_EQ(MerkleTree(leaves).root(), MerkleTree(leaves).root());
}

TEST(MerkleTree, RootSensitiveToAnyLeafChange) {
  auto leaves = Leaves(50, 2);
  const uint64_t root = MerkleTree(leaves).root();
  for (size_t i = 0; i < leaves.size(); i += 7) {
    auto mutated = leaves;
    mutated[i] ^= 1;
    EXPECT_NE(MerkleTree(mutated).root(), root) << "leaf " << i;
  }
}

TEST(MerkleTree, RootSensitiveToLeafOrder) {
  auto leaves = Leaves(8, 3);
  auto swapped = leaves;
  std::swap(swapped[0], swapped[7]);
  EXPECT_NE(MerkleTree(leaves).root(), MerkleTree(swapped).root());
}

class MerkleProofTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleProofTest, AllProofsVerify) {
  const size_t count = GetParam();
  const auto leaves = Leaves(count, count);
  MerkleTree tree(leaves);
  for (size_t i = 0; i < count; ++i) {
    const auto proof = tree.Prove(i);
    EXPECT_TRUE(MerkleTree::Verify(leaves[i], proof, tree.root()))
        << "leaf " << i;
  }
}

// Powers of two and awkward odd sizes (odd-node promotion).
INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 64, 100, 257));

TEST(MerkleTree, WrongLeafFailsVerification) {
  const auto leaves = Leaves(16, 5);
  MerkleTree tree(leaves);
  const auto proof = tree.Prove(3);
  EXPECT_FALSE(MerkleTree::Verify(leaves[3] ^ 1, proof, tree.root()));
}

TEST(MerkleTree, WrongRootFailsVerification) {
  const auto leaves = Leaves(16, 6);
  MerkleTree tree(leaves);
  const auto proof = tree.Prove(3);
  EXPECT_FALSE(MerkleTree::Verify(leaves[3], proof, tree.root() ^ 1));
}

TEST(MerkleTree, TamperedProofFailsVerification) {
  const auto leaves = Leaves(32, 7);
  MerkleTree tree(leaves);
  auto proof = tree.Prove(10);
  proof[1].sibling_digest ^= 0x10;
  EXPECT_FALSE(MerkleTree::Verify(leaves[10], proof, tree.root()));
}

TEST(MerkleTree, ProofLengthIsLogarithmic) {
  const auto leaves = Leaves(256, 8);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.Prove(0).size(), 8u);
}

TEST(Merkle, UpdateLeafMatchesFullRebuild) {
  auto leaves = Leaves(100, 9);
  MerkleTree incremental(leaves);
  Xoshiro256 rng(10);
  for (int step = 0; step < 50; ++step) {
    const size_t index = rng.NextBounded(leaves.size());
    leaves[index] = rng.Next();
    ASSERT_TRUE(incremental.UpdateLeaf(index, leaves[index]));
    const MerkleTree rebuilt(leaves);
    ASSERT_EQ(incremental.root(), rebuilt.root()) << "step " << step;
    ASSERT_EQ(incremental.leaf_digest(index), rebuilt.leaf_digest(index));
  }
}

TEST(Merkle, UpdateLeafOddSizesPromoteCorrectly) {
  // Odd leaf counts exercise the promoted-node path of the root walk.
  for (size_t count : {1u, 3u, 5u, 13u, 257u}) {
    auto leaves = Leaves(count, count * 31);
    MerkleTree tree(leaves);
    leaves[count - 1] ^= 0xABCD;
    ASSERT_TRUE(tree.UpdateLeaf(count - 1, leaves[count - 1]));
    EXPECT_EQ(tree.root(), MerkleTree(leaves).root()) << count << " leaves";
  }
}

TEST(Merkle, UpdateLeafOutOfRangeLeavesTreeUntouched) {
  const auto leaves = Leaves(8, 11);
  MerkleTree tree(leaves);
  const uint64_t root = tree.root();
  EXPECT_FALSE(tree.UpdateLeaf(8, 1));
  EXPECT_FALSE(tree.UpdateLeaf(1000, 1));
  EXPECT_EQ(tree.root(), root);
}

TEST(Merkle, UpdateLeafKeepsProofsValid) {
  auto leaves = Leaves(33, 12);
  MerkleTree tree(leaves);
  leaves[20] = 0xF00D;
  ASSERT_TRUE(tree.UpdateLeaf(20, 0xF00D));
  for (size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_TRUE(MerkleTree::Verify(leaves[i], tree.Prove(i), tree.root()))
        << "leaf " << i;
  }
}

TEST(Merkle, DiffLeavesFindsExactChangedSet) {
  auto a = Leaves(64, 13);
  auto b = a;
  b[0] ^= 1;
  b[31] ^= 2;
  b[63] ^= 3;
  EXPECT_EQ(MerkleTree::DiffLeaves(MerkleTree(a), MerkleTree(b)),
            (std::vector<size_t>{0, 31, 63}));
}

TEST(Merkle, DiffLeavesOfEqualTreesIsEmpty) {
  const auto leaves = Leaves(50, 14);
  EXPECT_TRUE(
      MerkleTree::DiffLeaves(MerkleTree(leaves), MerkleTree(leaves)).empty());
}

TEST(Merkle, DiffLeavesReportsLengthMismatchTail) {
  const auto a = Leaves(6, 15);
  std::vector<uint64_t> b(a.begin(), a.begin() + 4);
  EXPECT_EQ(MerkleTree::DiffLeaves(MerkleTree(a), MerkleTree(b)),
            (std::vector<size_t>{4, 5}));
}

TEST(Merkle, DiffLeavesEmptyTrees) {
  EXPECT_TRUE(MerkleTree::DiffLeaves(MerkleTree({}), MerkleTree({})).empty());
  EXPECT_EQ(MerkleTree::DiffLeaves(MerkleTree({7}), MerkleTree({})),
            (std::vector<size_t>{0}));
}

TEST(Merkle, LeafDigestMatchesHashLeaf) {
  const auto leaves = Leaves(5, 16);
  MerkleTree tree(leaves);
  for (size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_EQ(tree.leaf_digest(i), MerkleTree::HashLeaf(leaves[i]));
  }
}

TEST(MerkleTree, LeafAndInteriorDomainsSeparated) {
  // A leaf digest must not be confusable with an interior digest of the
  // same bytes (second-preimage structure attacks).
  EXPECT_NE(MerkleTree::HashLeaf(7), MerkleTree::HashInterior(7, 7));
}

}  // namespace
}  // namespace pbs
