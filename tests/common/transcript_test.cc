#include "pbs/common/transcript.h"

#include <gtest/gtest.h>

namespace pbs {
namespace {

TEST(Transcript, EmptyTotals) {
  Transcript t;
  EXPECT_EQ(t.total_bytes(), 0u);
  EXPECT_EQ(t.max_round(), 0);
}

TEST(Transcript, AccumulatesBytes) {
  Transcript t;
  t.Record(1, Direction::kAliceToBob, "req", 100);
  t.Record(1, Direction::kBobToAlice, "rep", 50);
  t.Record(2, Direction::kAliceToBob, "req", 25);
  EXPECT_EQ(t.total_bytes(), 175u);
  EXPECT_EQ(t.max_round(), 2);
}

TEST(Transcript, PerRoundBreakdown) {
  Transcript t;
  t.Record(1, Direction::kAliceToBob, "a", 10);
  t.Record(2, Direction::kAliceToBob, "b", 20);
  t.Record(2, Direction::kBobToAlice, "c", 30);
  EXPECT_EQ(t.BytesInRound(1), 10u);
  EXPECT_EQ(t.BytesInRound(2), 50u);
  EXPECT_EQ(t.BytesInRound(3), 0u);
}

TEST(Transcript, PerDirectionBreakdown) {
  Transcript t;
  t.Record(1, Direction::kAliceToBob, "a", 10);
  t.Record(1, Direction::kBobToAlice, "b", 99);
  EXPECT_EQ(t.BytesInDirection(Direction::kAliceToBob), 10u);
  EXPECT_EQ(t.BytesInDirection(Direction::kBobToAlice), 99u);
}

TEST(Transcript, ClearResets) {
  Transcript t;
  t.Record(1, Direction::kAliceToBob, "a", 10);
  t.Clear();
  EXPECT_EQ(t.total_bytes(), 0u);
  EXPECT_TRUE(t.entries().empty());
}

}  // namespace
}  // namespace pbs
