#include "pbs/common/checksum.h"

#include <gtest/gtest.h>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

TEST(SetChecksum, EmptyIsZero) {
  SetChecksum c(32);
  EXPECT_EQ(c.value(), 0u);
}

TEST(SetChecksum, AddThenRemoveRestores) {
  SetChecksum c(32);
  c.Add(12345);
  c.Add(67890);
  c.Remove(12345);
  c.Remove(67890);
  EXPECT_EQ(c.value(), 0u);
}

TEST(SetChecksum, OrderIndependent) {
  SetChecksum c1(32), c2(32);
  c1.Add(1); c1.Add(2); c1.Add(3);
  c2.Add(3); c2.Add(1); c2.Add(2);
  EXPECT_EQ(c1.value(), c2.value());
}

TEST(SetChecksum, WrapsModulo32Bits) {
  SetChecksum c(32);
  c.Add(0xFFFFFFFFull);
  c.Add(1);
  EXPECT_EQ(c.value(), 0u);
}

TEST(SetChecksum, RemoveWrapsBelowZero) {
  SetChecksum c(32);
  c.Remove(1);
  EXPECT_EQ(c.value(), 0xFFFFFFFFull);
}

TEST(SetChecksum, SixtyFourBitWidth) {
  SetChecksum c(64);
  c.Add(~uint64_t{0});
  c.Add(1);
  EXPECT_EQ(c.value(), 0u);
}

TEST(SetChecksum, DistinguishesDifferentSetsWithHighProbability) {
  // Sanity: across random distinct small sets the checksum rarely collides.
  Xoshiro256 rng(7);
  int collisions = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    SetChecksum c1(32), c2(32);
    for (int i = 0; i < 5; ++i) c1.Add(rng.Next() & 0xFFFFFFFF);
    for (int i = 0; i < 5; ++i) c2.Add(rng.Next() & 0xFFFFFFFF);
    if (c1.value() == c2.value()) ++collisions;
  }
  EXPECT_LE(collisions, 2);
}

TEST(SetChecksum, SymmetricDifferenceVerificationSemantics) {
  // The Section 2.2.3 identity: c(A /\triangle D) == c(B) when D == A/\triangle B.
  const std::vector<uint64_t> a = {10, 20, 30, 40};
  const std::vector<uint64_t> b = {10, 20, 50};
  // A triangle B = {30, 40, 50}.
  SetChecksum ca(32);
  for (auto e : a) ca.Add(e);
  // Apply D with toggle semantics.
  ca.Remove(30);
  ca.Remove(40);
  ca.Add(50);
  SetChecksum cb(32);
  for (auto e : b) cb.Add(e);
  EXPECT_EQ(ca.value(), cb.value());
}

}  // namespace
}  // namespace pbs
