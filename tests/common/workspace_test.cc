#include "pbs/common/workspace.h"

#include <cstdint>
#include <numeric>
#include <utility>

#include <gtest/gtest.h>

namespace pbs {
namespace {

TEST(Workspace, LeaseIsZeroFilledAndSized) {
  Workspace ws;
  auto s = ws.Take<uint64_t>(17);
  ASSERT_EQ(s.size(), 17u);
  for (size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i], 0u);
  EXPECT_EQ(ws.outstanding(), 1u);
  EXPECT_EQ(ws.free_buffers(), 0u);
}

TEST(Workspace, ReturnedBufferIsRecycledAndRezeroed) {
  Workspace ws;
  uint64_t* first_data = nullptr;
  {
    auto s = ws.Take<uint64_t>(8);
    first_data = s.data();
    for (size_t i = 0; i < 8; ++i) s[i] = 0xDEADBEEFull + i;
  }
  EXPECT_EQ(ws.outstanding(), 0u);
  EXPECT_EQ(ws.free_buffers(), 1u);
  auto s2 = ws.Take<uint64_t>(8);
  EXPECT_EQ(s2.data(), first_data);  // Same buffer, recycled.
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(s2[i], 0u);
}

TEST(Workspace, NonLifoReturnOrderIsFine) {
  Workspace ws;
  auto a = ws.Take<uint32_t>(4);
  auto b = ws.Take<uint32_t>(4);
  auto c = ws.Take<uint32_t>(4);
  EXPECT_EQ(ws.outstanding(), 3u);
  a.Release();  // Out of order w.r.t. c.
  c.Release();
  b.Release();
  EXPECT_EQ(ws.outstanding(), 0u);
  EXPECT_EQ(ws.free_buffers(), 3u);
}

TEST(Workspace, SteadyStateReservationIsStable) {
  Workspace ws;
  // Warm-up: a nested borrow pattern with its peak sizes.
  for (int iter = 0; iter < 2; ++iter) {
    auto outer = ws.Take<uint64_t>(100);
    auto inner = ws.Take<uint8_t>(333);
    auto deep = ws.Take<uint64_t>(7);
    deep.Release();
    inner.Release();
    outer.Release();
  }
  const size_t reserved = ws.bytes_reserved();
  ASSERT_GT(reserved, 0u);
  // Steady state: identical pattern must not grow the pool.
  for (int iter = 0; iter < 50; ++iter) {
    auto outer = ws.Take<uint64_t>(100);
    auto inner = ws.Take<uint8_t>(333);
    auto deep = ws.Take<uint64_t>(7);
  }
  EXPECT_EQ(ws.bytes_reserved(), reserved);
  EXPECT_EQ(ws.free_buffers(), 3u);
}

TEST(Workspace, ResizePreservesPrefixAndZeroesTail) {
  Workspace ws;
  auto s = ws.Take<uint64_t>(4);
  for (size_t i = 0; i < 4; ++i) s[i] = i + 1;
  s.Resize(9);
  ASSERT_EQ(s.size(), 9u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(s[i], i + 1);
  for (size_t i = 4; i < 9; ++i) EXPECT_EQ(s[i], 0u);
  s.Resize(2);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 1u);
  EXPECT_EQ(s[1], 2u);
}

TEST(Workspace, MoveTransfersOwnership) {
  Workspace ws;
  auto a = ws.Take<uint64_t>(3);
  a[0] = 42;
  Scratch<uint64_t> b = std::move(a);
  EXPECT_EQ(a.data(), nullptr);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 42u);
  EXPECT_EQ(ws.outstanding(), 1u);
  b.Release();
  EXPECT_EQ(ws.outstanding(), 0u);
}

TEST(Workspace, SpanOverVectorAndScratch) {
  std::vector<uint64_t> v(5);
  std::iota(v.begin(), v.end(), 10);
  Span<const uint64_t> sv = v;
  ASSERT_EQ(sv.size(), 5u);
  EXPECT_EQ(sv[0], 10u);
  EXPECT_EQ(sv.first(2).size(), 2u);

  Workspace ws;
  auto s = ws.Take<uint64_t>(5);
  Span<uint64_t> ms = s.span();
  ms[3] = 77;
  EXPECT_EQ(s[3], 77u);
  Span<const uint64_t> cs = s.cspan();
  EXPECT_EQ(cs[3], 77u);
}

}  // namespace
}  // namespace pbs
