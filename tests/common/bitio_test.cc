#include "pbs/common/bitio.h"

#include <gtest/gtest.h>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

TEST(BitWriter, EmptyWriterHasNoBytes) {
  BitWriter w;
  EXPECT_EQ(w.bit_size(), 0u);
  EXPECT_EQ(w.byte_size(), 0u);
  EXPECT_TRUE(w.bytes().empty());
}

TEST(BitWriter, SingleBitOccupiesOneByte) {
  BitWriter w;
  w.WriteBit(true);
  EXPECT_EQ(w.bit_size(), 1u);
  EXPECT_EQ(w.byte_size(), 1u);
  EXPECT_EQ(w.bytes()[0], 0x01);
}

TEST(BitWriter, BitsPackLsbFirst) {
  BitWriter w;
  w.WriteBits(0b1011, 4);
  w.WriteBits(0b0110, 4);
  ASSERT_EQ(w.byte_size(), 1u);
  EXPECT_EQ(w.bytes()[0], 0b01101011);
}

TEST(BitWriter, ValueIsMaskedToWidth) {
  BitWriter w;
  w.WriteBits(0xFF, 4);  // Only low 4 bits should be kept.
  ASSERT_EQ(w.byte_size(), 1u);
  EXPECT_EQ(w.bytes()[0], 0x0F);
}

TEST(BitWriter, ZeroWidthWritesNothing) {
  BitWriter w;
  w.WriteBits(123, 0);
  EXPECT_EQ(w.bit_size(), 0u);
}

TEST(BitWriter, SixtyFourBitValueRoundTrips) {
  BitWriter w;
  const uint64_t v = 0xDEADBEEFCAFEBABEull;
  w.WriteBits(v, 64);
  BitReader r(w.bytes());
  EXPECT_EQ(r.ReadBits(64), v);
}

TEST(BitReader, ReadPastEndSetsOverflow) {
  BitWriter w;
  w.WriteBits(0x3, 2);
  BitReader r(w.bytes());
  r.ReadBits(8);  // Stream has 8 physical bits (one byte).
  EXPECT_FALSE(r.overflowed());
  r.ReadBits(1);
  EXPECT_TRUE(r.overflowed());
  EXPECT_EQ(r.ReadBits(5), 0u);  // Subsequent reads return zero.
}

TEST(BitReader, RemainingBitsTracksPosition) {
  BitWriter w;
  w.WriteBits(0xFFFF, 16);
  BitReader r(w.bytes());
  EXPECT_EQ(r.remaining_bits(), 16u);
  r.ReadBits(5);
  EXPECT_EQ(r.remaining_bits(), 11u);
}

TEST(Varint, SmallValuesUseOneGroup) {
  BitWriter w;
  w.WriteVarint(100);
  EXPECT_EQ(w.bit_size(), 8u);  // 7 payload bits + 1 continuation.
  BitReader r(w.bytes());
  EXPECT_EQ(r.ReadVarint(), 100u);
}

TEST(Varint, LargeValuesRoundTrip) {
  const uint64_t values[] = {0,    1,     127,        128,
                             1000, 1u << 20, ~uint64_t{0}};
  for (uint64_t v : values) {
    BitWriter w;
    w.WriteVarint(v);
    BitReader r(w.bytes());
    EXPECT_EQ(r.ReadVarint(), v) << "value " << v;
  }
}

TEST(BitIo, TakeBytesResetsWriter) {
  BitWriter w;
  w.WriteBits(0xAB, 8);
  auto bytes = w.TakeBytes();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(w.bit_size(), 0u);
  w.WriteBits(0xCD, 8);
  EXPECT_EQ(w.bytes()[0], 0xCD);
}

// Property: any sequence of mixed-width writes reads back identically.
class BitIoRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitIoRoundTrip, RandomMixedWidths) {
  Xoshiro256 rng(GetParam());
  std::vector<std::pair<uint64_t, int>> writes;
  BitWriter w;
  for (int i = 0; i < 500; ++i) {
    const int bits = 1 + static_cast<int>(rng.NextBounded(64));
    uint64_t value = rng.Next();
    if (bits < 64) value &= (uint64_t{1} << bits) - 1;
    writes.emplace_back(value, bits);
    w.WriteBits(value, bits);
  }
  BitReader r(w.bytes());
  for (const auto& [value, bits] : writes) {
    EXPECT_EQ(r.ReadBits(bits), value);
  }
  EXPECT_FALSE(r.overflowed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitIoRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace pbs
