#include "pbs/ibf/cuckoo_filter.h"

#include <gtest/gtest.h>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

TEST(CuckooFilter, NoFalseNegatives) {
  CuckooFilter cf(1000, 12, 1);
  Xoshiro256 rng(1);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t k = rng.Next();
    if (cf.Insert(k)) keys.push_back(k);
  }
  EXPECT_GE(keys.size(), 990u);  // ~95% load should accept nearly all.
  for (uint64_t k : keys) EXPECT_TRUE(cf.Contains(k));
}

TEST(CuckooFilter, FalsePositiveRateNearTheory) {
  const int bits = 10;
  CuckooFilter cf(5000, bits, 2);
  Xoshiro256 rng(2);
  for (int i = 0; i < 5000; ++i) cf.Insert(rng.Next() | 1);
  int fp = 0;
  constexpr int kProbes = 100000;
  for (int i = 0; i < kProbes; ++i) {
    if (cf.Contains(rng.Next() & ~uint64_t{1})) ++fp;
  }
  const double rate = static_cast<double>(fp) / kProbes;
  const double theory = 8.0 / (1 << bits);  // 2 buckets * 4 slots / 2^bits.
  EXPECT_LT(rate, theory * 2.0);
}

TEST(CuckooFilter, DeleteRemovesMembership) {
  CuckooFilter cf(100, 12, 3);
  EXPECT_TRUE(cf.Insert(42));
  EXPECT_TRUE(cf.Contains(42));
  EXPECT_TRUE(cf.Delete(42));
  EXPECT_FALSE(cf.Contains(42));
  EXPECT_FALSE(cf.Delete(42));
}

TEST(CuckooFilter, EvictionChainsStillFindBothBuckets) {
  // Fill well past trivial occupancy; every accepted key must remain
  // findable even after long eviction chains.
  CuckooFilter cf(2000, 12, 4);
  Xoshiro256 rng(4);
  std::vector<uint64_t> accepted;
  for (int i = 0; i < 1900; ++i) {
    const uint64_t k = rng.Next();
    if (cf.Insert(k)) accepted.push_back(k);
  }
  int missing = 0;
  for (uint64_t k : accepted) {
    if (!cf.Contains(k)) ++missing;
  }
  // A failed insert may displace one earlier victim; tolerance is tiny.
  EXPECT_LE(missing, 2);
}

TEST(CuckooFilter, WireSizeFormula) {
  CuckooFilter cf(1000, 12, 5);
  EXPECT_EQ(cf.bit_size(), cf.bucket_count() * 4 * 12);
}

TEST(CuckooFilter, SmallerFingerprintsSmallerFilter) {
  CuckooFilter small(1000, 6, 6), large(1000, 14, 6);
  EXPECT_LT(small.byte_size(), large.byte_size());
}

}  // namespace
}  // namespace pbs
