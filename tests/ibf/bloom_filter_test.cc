#include "pbs/ibf/bloom_filter.h"

#include <gtest/gtest.h>

#include <cmath>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf = BloomFilter::ForCapacity(1000, 0.01, 7);
  Xoshiro256 rng(1);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(rng.Next());
  for (uint64_t k : keys) bf.Insert(k);
  for (uint64_t k : keys) EXPECT_TRUE(bf.Contains(k));
}

TEST(BloomFilter, FalsePositiveRateNearTarget) {
  constexpr double kTarget = 0.02;
  BloomFilter bf = BloomFilter::ForCapacity(5000, kTarget, 11);
  Xoshiro256 rng(2);
  for (int i = 0; i < 5000; ++i) bf.Insert(rng.Next() | 1);
  int fp = 0;
  constexpr int kProbes = 50000;
  for (int i = 0; i < kProbes; ++i) {
    if (bf.Contains(rng.Next() & ~uint64_t{1})) ++fp;  // Disjoint keys.
  }
  const double rate = static_cast<double>(fp) / kProbes;
  EXPECT_LT(rate, kTarget * 2.5);
  EXPECT_GT(rate, kTarget / 10);
}

TEST(BloomFilter, SizingFormulaMatchesTheory) {
  // bits/key = 1.44 log2(1/fpr).
  BloomFilter bf = BloomFilter::ForCapacity(10000, 0.01, 3);
  const double bits_per_key = static_cast<double>(bf.bit_count()) / 10000;
  EXPECT_NEAR(bits_per_key, 1.44 * std::log2(100.0), 0.5);
}

TEST(BloomFilter, EmptyContainsNothing) {
  BloomFilter bf(1024, 4, 9);
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(bf.Contains(rng.Next()));
}

TEST(BloomFilter, LowerFprCostsMoreBits) {
  const auto a = BloomFilter::ForCapacity(1000, 0.1, 1);
  const auto b = BloomFilter::ForCapacity(1000, 0.001, 1);
  EXPECT_LT(a.bit_count(), b.bit_count());
  EXPECT_LT(a.num_hashes(), b.num_hashes());
}

}  // namespace
}  // namespace pbs
