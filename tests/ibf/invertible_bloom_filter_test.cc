#include "pbs/ibf/invertible_bloom_filter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

std::vector<uint64_t> RandomKeys(int count, int sig_bits, Xoshiro256* rng) {
  std::set<uint64_t> s;
  const uint64_t mask =
      sig_bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << sig_bits) - 1;
  while (static_cast<int>(s.size()) < count) {
    const uint64_t v = rng->Next() & mask;
    if (v != 0) s.insert(v);
  }
  return {s.begin(), s.end()};
}

TEST(Ibf, InsertThenEraseIsEmpty) {
  InvertibleBloomFilter ibf(64, 4, 1, 32);
  Xoshiro256 rng(1);
  auto keys = RandomKeys(10, 32, &rng);
  for (auto k : keys) ibf.Insert(k);
  for (auto k : keys) ibf.Erase(k);
  auto decoded = ibf.Decode();
  EXPECT_TRUE(decoded.complete);
  EXPECT_TRUE(decoded.positive.empty());
  EXPECT_TRUE(decoded.negative.empty());
}

TEST(Ibf, DecodeRecoverData) {
  InvertibleBloomFilter ibf(64, 4, 2, 32);
  Xoshiro256 rng(2);
  auto keys = RandomKeys(15, 32, &rng);
  for (auto k : keys) ibf.Insert(k);
  auto decoded = ibf.Decode();
  ASSERT_TRUE(decoded.complete);
  std::sort(decoded.positive.begin(), decoded.positive.end());
  EXPECT_EQ(decoded.positive, keys);
  EXPECT_TRUE(decoded.negative.empty());
}

TEST(Ibf, SubtractRecoversSymmetricDifference) {
  Xoshiro256 rng(3);
  auto common = RandomKeys(1000, 32, &rng);
  auto a_only = RandomKeys(8, 32, &rng);
  auto b_only = RandomKeys(6, 32, &rng);

  InvertibleBloomFilter ia(60, 4, 7, 32), ib(60, 4, 7, 32);
  for (auto k : common) {
    ia.Insert(k);
    ib.Insert(k);
  }
  for (auto k : a_only) ia.Insert(k);
  for (auto k : b_only) ib.Insert(k);

  ia.Subtract(ib);
  auto decoded = ia.Decode();
  ASSERT_TRUE(decoded.complete);
  std::sort(decoded.positive.begin(), decoded.positive.end());
  std::sort(decoded.negative.begin(), decoded.negative.end());
  EXPECT_EQ(decoded.positive, a_only);
  EXPECT_EQ(decoded.negative, b_only);
}

TEST(Ibf, OverloadedFilterReportsIncomplete) {
  InvertibleBloomFilter ibf(16, 4, 4, 32);
  Xoshiro256 rng(4);
  for (auto k : RandomKeys(200, 32, &rng)) ibf.Insert(k);
  auto decoded = ibf.Decode();
  EXPECT_FALSE(decoded.complete);
}

TEST(Ibf, DecodeIsNonDestructive) {
  InvertibleBloomFilter ibf(64, 4, 5, 32);
  Xoshiro256 rng(5);
  auto keys = RandomKeys(10, 32, &rng);
  for (auto k : keys) ibf.Insert(k);
  auto first = ibf.Decode();
  auto second = ibf.Decode();
  EXPECT_EQ(first.positive.size(), second.positive.size());
  EXPECT_TRUE(second.complete);
}

TEST(Ibf, SerializeRoundTrips) {
  InvertibleBloomFilter ibf(32, 4, 6, 32);
  Xoshiro256 rng(6);
  auto keys = RandomKeys(5, 32, &rng);
  for (auto k : keys) ibf.Insert(k);
  // Make a negative count to exercise sign extension.
  ibf.Erase(0xDEAD);
  BitWriter w;
  ibf.Serialize(&w);
  EXPECT_EQ(w.bit_size(), ibf.bit_size());
  BitReader r(w.bytes());
  auto back =
      InvertibleBloomFilter::Deserialize(&r, 32, 4, 6, 32);
  ASSERT_EQ(back.cell_count(), ibf.cell_count());
  for (size_t i = 0; i < ibf.cell_count(); ++i) {
    EXPECT_EQ(back.cell(i).count, ibf.cell(i).count);
    EXPECT_EQ(back.cell(i).key_sum, ibf.cell(i).key_sum);
    EXPECT_EQ(back.cell(i).hash_sum, ibf.cell(i).hash_sum);
  }
}

TEST(Ibf, WireSizeIsThreeFieldsPerCell) {
  InvertibleBloomFilter ibf(100, 4, 1, 32);
  // 100 cells at 3 * 32 bits; cells rounded up to a multiple of num_hashes.
  EXPECT_EQ(ibf.bit_size(), ibf.cell_count() * 3 * 32);
  EXPECT_GE(ibf.cell_count(), 100u);
}

// Decode success rate at the D.Digest operating point: 2d cells for d
// differences should decode with high probability.
class IbfLoadFactor : public ::testing::TestWithParam<int> {};

TEST_P(IbfLoadFactor, TwoCellsPerDifferenceUsuallyDecodes) {
  const int d = GetParam();
  Xoshiro256 rng(d);
  int ok = 0;
  constexpr int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    InvertibleBloomFilter ia(2 * d, d > 200 ? 3 : 4, trial, 32);
    InvertibleBloomFilter ib(2 * d, d > 200 ? 3 : 4, trial, 32);
    auto common = RandomKeys(200, 32, &rng);
    auto diff = RandomKeys(d, 32, &rng);
    for (auto k : common) {
      ia.Insert(k);
      ib.Insert(k);
    }
    for (auto k : diff) ia.Insert(k);
    ia.Subtract(ib);
    auto decoded = ia.Decode();
    if (decoded.complete &&
        decoded.positive.size() == static_cast<size_t>(d)) {
      ++ok;
    }
  }
  EXPECT_GE(ok, kTrials * 80 / 100) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Loads, IbfLoadFactor,
                         ::testing::Values(20, 50, 100, 400));

TEST(Ibf, SixtyFourBitSignatures) {
  InvertibleBloomFilter ia(40, 4, 9, 64), ib(40, 4, 9, 64);
  Xoshiro256 rng(9);
  auto diff = RandomKeys(8, 64, &rng);
  for (auto k : diff) ia.Insert(k);
  ia.Subtract(ib);
  auto decoded = ia.Decode();
  ASSERT_TRUE(decoded.complete);
  std::sort(decoded.positive.begin(), decoded.positive.end());
  EXPECT_EQ(decoded.positive, diff);
}

}  // namespace
}  // namespace pbs
