// Differential tests for the vectorized IBF paths: Subtract's four-cell
// sub/xor blend must be bit-identical to SubtractScalar across cell counts
// that do and do not fill whole vector blocks, and the batched-hash peel
// must recover exactly the same sets as before.

#include "pbs/ibf/invertible_bloom_filter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

std::vector<uint64_t> RandomKeys(size_t count, int sig_bits, Xoshiro256* rng) {
  const uint64_t mask =
      sig_bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << sig_bits) - 1;
  std::set<uint64_t> keys;
  while (keys.size() < count) {
    const uint64_t k = rng->Next() & mask;
    if (k != 0) keys.insert(k);
  }
  return {keys.begin(), keys.end()};
}

TEST(IbfSimdDiff, SubtractMatchesScalarSubtract) {
  Xoshiro256 rng(0x5B74AC);
  // Cell counts chosen to land on and off the 4-cell vector block
  // boundary after the constructor's subtable rounding.
  for (size_t cells : {size_t{3}, size_t{4}, size_t{7}, size_t{12},
                       size_t{50}, size_t{128}, size_t{333}}) {
    for (int num_hashes : {1, 3, 4}) {
      const uint64_t salt = rng.Next();
      const int sig_bits = 32;
      InvertibleBloomFilter a(cells, num_hashes, salt, sig_bits);
      InvertibleBloomFilter b(cells, num_hashes, salt, sig_bits);
      for (uint64_t k : RandomKeys(40, sig_bits, &rng)) a.Insert(k);
      for (uint64_t k : RandomKeys(35, sig_bits, &rng)) b.Insert(k);
      InvertibleBloomFilter a_ref = a;
      a.Subtract(b);
      a_ref.SubtractScalar(b);
      ASSERT_EQ(a.cell_count(), a_ref.cell_count());
      for (size_t i = 0; i < a.cell_count(); ++i) {
        ASSERT_EQ(a.cell(i).count, a_ref.cell(i).count)
            << "cells=" << cells << " k=" << num_hashes << " i=" << i;
        ASSERT_EQ(a.cell(i).key_sum, a_ref.cell(i).key_sum)
            << "cells=" << cells << " k=" << num_hashes << " i=" << i;
        ASSERT_EQ(a.cell(i).hash_sum, a_ref.cell(i).hash_sum)
            << "cells=" << cells << " k=" << num_hashes << " i=" << i;
      }
    }
  }
}

TEST(IbfSimdDiff, BatchedPeelRecoversExactDifference) {
  Xoshiro256 rng(0x9EE1ED);
  for (int trial = 0; trial < 20; ++trial) {
    const int sig_bits = 32;
    const size_t d = 1 + rng.NextBounded(20);
    const size_t cells = 3 * d + 6;
    const uint64_t salt = rng.Next();
    InvertibleBloomFilter alice(cells, 4, salt, sig_bits);
    InvertibleBloomFilter bob(cells, 4, salt, sig_bits);
    const auto shared = RandomKeys(50, sig_bits, &rng);
    auto uniq = RandomKeys(2 * d, sig_bits, &rng);
    // Keep the two unique pools disjoint from the shared pool.
    std::vector<uint64_t> alice_only, bob_only;
    for (size_t i = 0; i < uniq.size(); ++i) {
      if (std::find(shared.begin(), shared.end(), uniq[i]) != shared.end()) {
        continue;
      }
      (i % 2 == 0 ? alice_only : bob_only).push_back(uniq[i]);
    }
    for (uint64_t k : shared) alice.Insert(k), bob.Insert(k);
    for (uint64_t k : alice_only) alice.Insert(k);
    for (uint64_t k : bob_only) bob.Insert(k);

    alice.Subtract(bob);
    Workspace ws;
    InvertibleBloomFilter::DecodeResult result;
    alice.DecodeInto(ws, &result);
    ASSERT_TRUE(result.complete) << "trial=" << trial;
    std::sort(result.positive.begin(), result.positive.end());
    std::sort(result.negative.begin(), result.negative.end());
    std::sort(alice_only.begin(), alice_only.end());
    std::sort(bob_only.begin(), bob_only.end());
    EXPECT_EQ(result.positive, alice_only) << "trial=" << trial;
    EXPECT_EQ(result.negative, bob_only) << "trial=" << trial;
  }
}

TEST(IbfSimdDiff, WireRoundTripSurvivesVectorizedSubtract) {
  Xoshiro256 rng(0x31BEEF);
  const int sig_bits = 24;
  const uint64_t salt = rng.Next();
  InvertibleBloomFilter a(60, 3, salt, sig_bits);
  InvertibleBloomFilter b(60, 3, salt, sig_bits);
  for (uint64_t k : RandomKeys(30, sig_bits, &rng)) a.Insert(k);
  for (uint64_t k : RandomKeys(5, sig_bits, &rng)) b.Insert(k);
  a.Subtract(b);  // Mixed-sign counts on the wire.
  BitWriter w;
  a.Serialize(&w);
  BitReader r(w.bytes());
  InvertibleBloomFilter back = InvertibleBloomFilter::Deserialize(
      &r, 60, 3, salt, sig_bits);
  ASSERT_EQ(back.cell_count(), a.cell_count());
  for (size_t i = 0; i < a.cell_count(); ++i) {
    const uint64_t mask = (uint64_t{1} << sig_bits) - 1;
    EXPECT_EQ(back.cell(i).count & mask,
              static_cast<uint64_t>(a.cell(i).count) & mask);
    EXPECT_EQ(back.cell(i).key_sum, a.cell(i).key_sum & mask);
    EXPECT_EQ(back.cell(i).hash_sum, a.cell(i).hash_sum & mask);
  }
}

}  // namespace
}  // namespace pbs
