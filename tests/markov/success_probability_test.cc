#include "pbs/markov/success_probability.h"

#include <gtest/gtest.h>

namespace pbs {
namespace {

TEST(BinomialPmf, SumsToOne) {
  double sum = 0;
  for (int x = 0; x <= 50; ++x) sum += BinomialPmf(50, 0.3, x);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(BinomialPmf, MatchesSmallCases) {
  EXPECT_NEAR(BinomialPmf(3, 0.5, 0), 0.125, 1e-12);
  EXPECT_NEAR(BinomialPmf(3, 0.5, 1), 0.375, 1e-12);
  EXPECT_NEAR(BinomialPmf(2, 0.25, 2), 0.0625, 1e-12);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 0.5, 6), 0.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 0.5, -1), 0.0);
}

TEST(BinomialPmf, DegenerateProbabilities) {
  EXPECT_DOUBLE_EQ(BinomialPmf(10, 0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(10, 1.0, 10), 1.0);
}

TEST(SingleGroupSuccess, ZeroElementsAlwaysSucceed) {
  EXPECT_DOUBLE_EQ(SingleGroupSuccess(127, 13, 1, 0), 1.0);
}

TEST(SingleGroupSuccess, MoreRoundsNeverHurt) {
  for (int x : {2, 5, 10}) {
    double prev = 0;
    for (int r = 1; r <= 5; ++r) {
      const double p = SingleGroupSuccess(127, 13, r, x);
      EXPECT_GE(p, prev - 1e-12) << "x=" << x << " r=" << r;
      prev = p;
    }
  }
}

TEST(SingleGroupSuccess, OneRoundEqualsIdealCase) {
  // Pr[x ->1 0] is the probability all balls land in distinct bins.
  const double p = SingleGroupSuccess(255, 13, 1, 5);
  EXPECT_NEAR(p, 0.9613, 0.001);  // Section 1.3.1's 0.96.
}

TEST(SingleGroupSuccess, BeyondCapacityIsZeroInTruncatedModel) {
  EXPECT_DOUBLE_EQ(SingleGroupSuccess(127, 13, 3, 14), 0.0);
}

TEST(SplitModel, BeyondCapacityRecoversViaSplits) {
  // The Section 3.2 path: x > t still usually succeeds in r = 3 rounds.
  const double p = SingleGroupSuccessWithSplits(127, 13, 3, 14);
  EXPECT_GT(p, 0.99);
  EXPECT_LT(p, 1.0);
}

TEST(SplitModel, NoRoundsLeftMeansFailure) {
  EXPECT_DOUBLE_EQ(SingleGroupSuccessWithSplits(127, 13, 0, 3), 0.0);
  // x > t with r = 1: the failed round exhausts the budget.
  EXPECT_DOUBLE_EQ(SingleGroupSuccessWithSplits(127, 13, 1, 14), 0.0);
}

TEST(Alpha, BoundedAboveByOne) {
  EXPECT_LE(Alpha(127, 13, 3, 1000, 200), 1.0);
  EXPECT_LE(AlphaWithSplits(127, 13, 3, 1000, 200), 1.0);
}

TEST(Alpha, SplitAwareDominatesTruncated) {
  const double truncated = Alpha(127, 13, 3, 1000, 200);
  const double split = AlphaWithSplits(127, 13, 3, 1000, 200);
  EXPECT_GE(split, truncated);
}

TEST(OverallBound, MonotoneInAlpha) {
  EXPECT_GT(OverallSuccessLowerBound(0.9999, 200),
            OverallSuccessLowerBound(0.999, 200));
}

TEST(OverallBound, PaperBchFailureProbability) {
  // Section 3.2: d=1000, delta=5, t=13 -> Pr[delta_i > t] ~ 6.7e-4.
  double tail = 0;
  for (int x = 14; x <= 1000; ++x) tail += BinomialPmf(1000, 1.0 / 200, x);
  EXPECT_NEAR(tail, 6.7e-4, 1e-4);
}

TEST(OverallBound, PaperSubGroupSplitProbability) {
  // Section 3.2: conditioned on delta_i = 14 (just above t = 13), the
  // probability that some third of a 3-way split still exceeds t is tiny.
  // Multinomial bound: P[max > 13] <= 3 * P[Binom(14, 1/3) > 13].
  double tail = 0;
  for (int x = 14; x <= 14; ++x) tail += BinomialPmf(14, 1.0 / 3, x);
  EXPECT_LT(3 * tail, 1e-5);
}

// --- Table 1 reproduction (the calibrated model) ---
struct Table1Cell {
  int n;
  int t;
  double paper_value;  // Percent.
};

class Table1Test : public ::testing::TestWithParam<Table1Cell> {};

TEST_P(Table1Test, MatchesPaperWithinTolerance) {
  const auto& cell = GetParam();
  const double computed =
      100.0 * SuccessLowerBoundCalibrated(cell.n, cell.t, 3, 1000, 200);
  // Reading precision + model residual: generous but meaningful tolerance.
  EXPECT_NEAR(computed, cell.paper_value, 6.0)
      << "n=" << cell.n << " t=" << cell.t;
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, Table1Test,
    ::testing::Values(Table1Cell{63, 10, 75.1}, Table1Cell{63, 11, 85.9},
                      Table1Cell{63, 12, 91.3}, Table1Cell{63, 13, 93.9},
                      Table1Cell{63, 14, 95.1}, Table1Cell{63, 15, 95.6},
                      Table1Cell{63, 16, 95.7}, Table1Cell{63, 17, 95.8},
                      Table1Cell{127, 11, 96.9}, Table1Cell{127, 12, 98.5},
                      Table1Cell{127, 13, 99.1}, Table1Cell{127, 14, 99.4},
                      Table1Cell{127, 17, 99.6}, Table1Cell{255, 12, 99.7},
                      Table1Cell{255, 13, 99.8}, Table1Cell{511, 11, 99.5},
                      Table1Cell{1023, 11, 99.6}, Table1Cell{2047, 11, 99.6}));

TEST(Table1, OptimalCellIsFeasible) {
  // The paper's chosen cell (n=127, t=13) must clear p0 = 99%.
  EXPECT_GE(SuccessLowerBoundCalibrated(127, 13, 3, 1000, 200), 0.99);
}

TEST(Table1, CheaperNeighborsAreInfeasible) {
  // (63, t) cells are all below 99% -- the reason the paper moves to n=127.
  for (int t = 8; t <= 17; ++t) {
    EXPECT_LT(SuccessLowerBoundCalibrated(63, t, 3, 1000, 200), 0.99);
  }
}

}  // namespace
}  // namespace pbs
