#include "pbs/markov/optimizer.h"

#include <gtest/gtest.h>

namespace pbs {
namespace {

TEST(Optimizer, ReproducesPaperOptimum) {
  // d=1000, delta=5, r=3, p0=0.99 -> (n=127, t=13), 318 bits per group
  // (Appendix H / Section 5.2).
  OptimizerOptions options;
  options.d = 1000;
  auto plan = OptimizeParams(options);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->n, 127);
  EXPECT_EQ(plan->t, 13);
  EXPECT_EQ(plan->g, 200);
  EXPECT_NEAR(plan->bits_per_group, 318.0, 0.5);
  EXPECT_GE(plan->lower_bound, 0.99);
}

TEST(Optimizer, ObjectiveFormulaMatchesPaper) {
  // (t + delta) log n + (delta + 1) log|U| with n=127, t=13:
  // 18*7 + 6*32 = 126 + 192 = 318.
  OptimizerOptions options;
  options.d = 1000;
  auto plan = OptimizeParams(options);
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->bits_per_group,
                   (plan->t + 5.0) * plan->m + 6.0 * 32);
}

TEST(Optimizer, GridContainsAllCombinations) {
  OptimizerOptions options;
  options.d = 1000;
  const auto grid = EvaluateGrid(options);
  // m in 6..11 (6 values), t in 8..17 (10 values).
  EXPECT_EQ(grid.size(), 60u);
}

TEST(Optimizer, HigherP0NeedsMoreBits) {
  OptimizerOptions lenient;
  lenient.d = 1000;
  lenient.p0 = 0.95;
  OptimizerOptions strict = lenient;
  strict.p0 = 239.0 / 240.0;
  auto cheap = OptimizeParams(lenient);
  auto costly = OptimizeParams(strict);
  ASSERT_TRUE(cheap.has_value());
  ASSERT_TRUE(costly.has_value());
  EXPECT_LE(cheap->bits_per_group, costly->bits_per_group);
}

TEST(Optimizer, FewerRoundsNeedMoreBits) {
  // Section 5.2: optimal comm overhead decreases with r.
  double prev = 1e18;
  for (int r = 2; r <= 4; ++r) {
    OptimizerOptions options;
    options.d = 1000;
    options.r = r;
    options.max_m = 13;
    auto plan = OptimizeParams(options);
    ASSERT_TRUE(plan.has_value()) << "r=" << r;
    EXPECT_LE(plan->bits_per_group, prev) << "r=" << r;
    prev = plan->bits_per_group;
  }
}

TEST(Optimizer, RoundTradeoffNearPaperValues) {
  // Paper Section 5.2: 402 / 318 / 288 bits for r = 2 / 3 / 4.
  const double expected[] = {402, 318, 288};
  for (int r = 2; r <= 4; ++r) {
    OptimizerOptions options;
    options.d = 1000;
    options.r = r;
    options.max_m = 13;
    auto plan = OptimizeParams(options);
    ASSERT_TRUE(plan.has_value());
    EXPECT_NEAR(plan->bits_per_group, expected[r - 2], 20.0) << "r=" << r;
  }
}

TEST(Optimizer, InfeasibleRangeReturnsNullopt) {
  OptimizerOptions options;
  options.d = 1000;
  options.r = 1;  // One round with small n cannot hit 99%.
  options.max_m = 11;
  EXPECT_FALSE(OptimizeParams(options).has_value());
}

TEST(Optimizer, SmallDUsesOneGroupPerDeltaElements) {
  OptimizerOptions options;
  options.d = 10;
  auto plan = OptimizeParams(options);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->g, 2);
}

TEST(Optimizer, ZeroDStillPlans) {
  OptimizerOptions options;
  options.d = 0;
  auto plan = OptimizeParams(options);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->g, 1);
}

TEST(Optimizer, FeasibleCellsRespectBound) {
  OptimizerOptions options;
  options.d = 1000;
  for (const auto& cell : EvaluateGrid(options)) {
    EXPECT_EQ(cell.feasible, cell.lower_bound >= options.p0);
  }
}

}  // namespace
}  // namespace pbs
