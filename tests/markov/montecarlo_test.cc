// Monte-Carlo validation of the multi-round Markov chain (Section 4):
// simulate the actual rethrow process -- bad balls rethrown with fresh
// hashes each round -- and compare the empirical distribution of
// "rounds until empty" and the visit distribution after r rounds against
// M^r. This validates the Markov property itself (Dk depends only on
// Dk-1), not just single-round marginals.

#include <gtest/gtest.h>

#include <cmath>

#include "pbs/common/rng.h"
#include "pbs/markov/transition_matrix.h"

namespace pbs {
namespace {

// One round: throw `balls` into n bins, return the number of bad balls.
int ThrowOnce(int balls, int n, Xoshiro256* rng) {
  std::vector<int> counts(n, 0);
  std::vector<int> bins(balls);
  for (int i = 0; i < balls; ++i) {
    bins[i] = static_cast<int>(rng->NextBounded(n));
    ++counts[bins[i]];
  }
  int bad = 0;
  for (int i = 0; i < balls; ++i) {
    if (counts[bins[i]] >= 2) ++bad;
  }
  return bad;
}

struct McCase {
  int n;
  int x;
  int r;
};

class MarkovMonteCarlo : public ::testing::TestWithParam<McCase> {};

TEST_P(MarkovMonteCarlo, MultiRoundDistributionMatchesMatrixPower) {
  const auto [n, x, r] = GetParam();
  const int t = 20;
  const TransitionMatrix mr = TransitionMatrix::ForRound(n, t).Power(r);

  constexpr int kTrials = 60000;
  Xoshiro256 rng(n * 1000 + x * 10 + r);
  std::vector<int> end_state(t + 1, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    int balls = x;
    for (int round = 0; round < r && balls > 0; ++round) {
      balls = ThrowOnce(balls, n, &rng);
    }
    ++end_state[balls];
  }

  for (int y = 0; y <= x; ++y) {
    const double model = mr.At(x, y);
    const double empirical = end_state[y] / static_cast<double>(kTrials);
    const double stderr3 =
        3.0 * std::sqrt(std::max(model * (1 - model), 1e-9) / kTrials);
    EXPECT_NEAR(empirical, model, stderr3 + 0.003)
        << "n=" << n << " x=" << x << " r=" << r << " y=" << y;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MarkovMonteCarlo,
    ::testing::Values(McCase{63, 5, 1}, McCase{63, 5, 2}, McCase{63, 10, 2},
                      McCase{127, 5, 2}, McCase{127, 13, 3},
                      McCase{255, 8, 2}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_x" +
             std::to_string(info.param.x) + "_r" +
             std::to_string(info.param.r);
    });

TEST(MarkovMonteCarlo, MarkovPropertyHolds) {
  // P[D2 = y | D1 = z, D0 = x] should equal P[D2 = y | D1 = z] regardless
  // of x: condition on reaching z via different starting points and
  // compare next-round distributions.
  const int n = 63;
  Xoshiro256 rng(99);
  constexpr int kTrials = 400000;
  const int z = 2;  // Condition on exactly 2 bad balls after round 1.
  int counts_from_small[3] = {};  // D2 in {0, 2} from x = 4.
  int total_small = 0;
  int counts_from_large[3] = {};  // Same, from x = 8.
  int total_large = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    for (int start : {4, 8}) {
      if (ThrowOnce(start, n, &rng) != z) continue;
      const int d2 = ThrowOnce(z, n, &rng);
      const int slot = d2 == 0 ? 0 : 2;
      if (start == 4) {
        ++counts_from_small[slot];
        ++total_small;
      } else {
        ++counts_from_large[slot];
        ++total_large;
      }
    }
  }
  ASSERT_GT(total_small, 1000);
  ASSERT_GT(total_large, 1000);
  const double p_small =
      counts_from_small[0] / static_cast<double>(total_small);
  const double p_large =
      counts_from_large[0] / static_cast<double>(total_large);
  EXPECT_NEAR(p_small, p_large, 0.01);
  // And both match the chain: M(2, 0) = 1 - 1/n.
  EXPECT_NEAR(p_small, 1.0 - 1.0 / n, 0.01);
}

}  // namespace
}  // namespace pbs
