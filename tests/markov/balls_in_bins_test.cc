#include "pbs/markov/balls_in_bins.h"

#include <gtest/gtest.h>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

TEST(BallsInBins, BaseCaseZeroBalls) {
  BallsInBinsTable dp(63, 10);
  EXPECT_DOUBLE_EQ(dp.Prob(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(dp.Prob(0, 1, 0), 0.0);
  EXPECT_DOUBLE_EQ(dp.Transition(0, 0), 1.0);
}

TEST(BallsInBins, OneBallIsAlwaysGood) {
  BallsInBinsTable dp(63, 10);
  EXPECT_DOUBLE_EQ(dp.Transition(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(dp.Transition(1, 1), 0.0);
}

TEST(BallsInBins, TwoBallsCollideWithProbOneOverN) {
  const int n = 127;
  BallsInBinsTable dp(n, 10);
  EXPECT_NEAR(dp.Transition(2, 2), 1.0 / n, 1e-12);
  EXPECT_NEAR(dp.Transition(2, 0), 1.0 - 1.0 / n, 1e-12);
  EXPECT_DOUBLE_EQ(dp.Transition(2, 1), 0.0);  // Bad balls come in groups >= 2.
}

TEST(BallsInBins, RowsSumToOne) {
  BallsInBinsTable dp(255, 20);
  for (int i = 0; i <= 20; ++i) {
    double sum = 0;
    for (int j = 0; j <= 20; ++j) sum += dp.Transition(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "row " << i;
  }
}

TEST(BallsInBins, AllGoodMatchesIdealCaseProbability) {
  // Transition(i, 0) is exactly the ideal-case probability of Section 2.2.1.
  for (int n : {63, 127, 255}) {
    BallsInBinsTable dp(n, 12);
    for (int i = 1; i <= 12; ++i) {
      EXPECT_NEAR(dp.Transition(i, 0), IdealCaseProbability(i, n), 1e-9)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(BallsInBins, IdealCasePaperExample) {
  // d = 5, n = 255 -> 0.96 (Section 1.3.1).
  EXPECT_NEAR(IdealCaseProbability(5, 255), 0.96, 0.005);
}

TEST(BallsInBins, OddBallCountsNeverSingleBad) {
  // j = 1 is impossible: a lone ball is good by definition.
  BallsInBinsTable dp(63, 15);
  for (int i = 0; i <= 15; ++i) EXPECT_DOUBLE_EQ(dp.Transition(i, 1), 0.0);
}

TEST(BallsInBins, TypeExceptionProbabilitiesPaperExamples) {
  // Section 2.3 (d=5, n=255): P(some bin has a nonzero even number of
  // balls) ~ 0.04; P(some bin has >= 3 balls, odd) ~ 1.52e-4.
  // Monte-Carlo against the same quantities to validate the model's
  // decomposition (sub-state k tracks bad bins).
  Xoshiro256 rng(5);
  constexpr int kTrials = 400000;
  int even_exception = 0, odd_exception = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    int bins[255] = {};
    for (int ball = 0; ball < 5; ++ball) ++bins[rng.NextBounded(255)];
    bool has_even = false, has_odd3 = false;
    for (int c : bins) {
      if (c >= 2 && c % 2 == 0) has_even = true;
      if (c >= 3 && c % 2 == 1) has_odd3 = true;
    }
    if (has_even) ++even_exception;
    if (has_odd3) ++odd_exception;
  }
  EXPECT_NEAR(even_exception / static_cast<double>(kTrials), 0.039, 0.004);
  EXPECT_NEAR(odd_exception / static_cast<double>(kTrials), 1.52e-4, 8e-5);
}

TEST(BallsInBins, MonteCarloMatchesDpDistribution) {
  // Validate Transition(7, j) for n = 63 against simulation.
  const int n = 63, balls = 7;
  BallsInBinsTable dp(n, balls);
  Xoshiro256 rng(9);
  constexpr int kTrials = 200000;
  std::vector<int> counts(balls + 1, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    int bins[63] = {};
    for (int b = 0; b < balls; ++b) ++bins[rng.NextBounded(n)];
    int bad = 0;
    for (int c : bins) {
      if (c >= 2) bad += c;
    }
    ++counts[bad];
  }
  for (int j = 0; j <= balls; ++j) {
    const double empirical = counts[j] / static_cast<double>(kTrials);
    const double model = dp.Transition(balls, j);
    EXPECT_NEAR(empirical, model, 5e-3 + 0.05 * model) << "j=" << j;
  }
}

TEST(BallsInBins, MoreBinsMeanFewerBadBalls) {
  BallsInBinsTable small(63, 10);
  BallsInBinsTable large(1023, 10);
  EXPECT_GT(large.Transition(10, 0), small.Transition(10, 0));
}

}  // namespace
}  // namespace pbs
