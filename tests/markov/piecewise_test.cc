#include "pbs/markov/piecewise.h"

#include <gtest/gtest.h>

#include <numeric>

namespace pbs {
namespace {

TEST(Piecewise, PaperRoundFractions) {
  // Section 5.3: with d=1000, n=127, t=13, g=200 the expected proportions
  // reconciled in rounds 1..4 are 0.962, 0.0380, 3.61e-4, 2.86e-6.
  const auto fractions = ExpectedRoundFractions(127, 13, 1000, 200, 4);
  ASSERT_EQ(fractions.size(), 4u);
  EXPECT_NEAR(fractions[0], 0.962, 0.004);
  EXPECT_NEAR(fractions[1], 0.0380, 0.002);
  EXPECT_NEAR(fractions[2], 3.61e-4, 4e-5);
  EXPECT_NEAR(fractions[3], 2.86e-6, 4e-7);
}

TEST(Piecewise, FractionsDecreaseGeometrically) {
  const auto fractions = ExpectedRoundFractions(127, 13, 1000, 200, 4);
  for (size_t k = 1; k < fractions.size(); ++k) {
    EXPECT_LT(fractions[k], fractions[k - 1]);
  }
}

TEST(Piecewise, FractionsSumBelowOne) {
  const auto fractions = ExpectedRoundFractions(127, 13, 1000, 200, 6);
  const double total =
      std::accumulate(fractions.begin(), fractions.end(), 0.0);
  EXPECT_LE(total, 1.0 + 1e-9);
  // Nearly everything reconciles eventually; the deficit (~2e-3) is the
  // Binomial mass truncated at t (Appendix D).
  EXPECT_GT(total, 0.995);
}

TEST(Piecewise, FirstRoundCarriesVastMajority) {
  // The "piecewise reconciliability" claim: > 95% in round one.
  const auto fractions = ExpectedRoundFractions(127, 13, 1000, 200, 1);
  EXPECT_GT(fractions[0], 0.95);
}

TEST(Piecewise, ConditionalExpectationMatchesHandComputation) {
  // x = 2, one round: E[reconciled] = 2 * (1 - 1/n).
  const int n = 63;
  const double expected = 2.0 * (1.0 - 1.0 / n);
  EXPECT_NEAR(ExpectedReconciledWithin(n, 13, 1, 2), expected, 1e-9);
}

TEST(Piecewise, ZeroOrOverCapacityYieldZero) {
  EXPECT_DOUBLE_EQ(ExpectedReconciledWithin(127, 13, 3, 0), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedReconciledWithin(127, 13, 3, 14), 0.0);
}

TEST(Piecewise, LargerBitmapReconcilesFasterInRoundOne) {
  const auto small = ExpectedRoundFractions(63, 13, 1000, 200, 1);
  const auto large = ExpectedRoundFractions(1023, 13, 1000, 200, 1);
  EXPECT_GT(large[0], small[0]);
}

}  // namespace
}  // namespace pbs
