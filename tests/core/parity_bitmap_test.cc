#include "pbs/core/parity_bitmap.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

TEST(ParityBitmap, EmptyGroupAllZero) {
  SaltedHash h(1);
  auto pb = ParityBitmap::Build(std::vector<uint64_t>{}, h, 63);
  for (int i = 1; i <= 63; ++i) {
    EXPECT_EQ(pb.parity[i], 0);
    EXPECT_EQ(pb.xor_sum[i], 0u);
  }
}

TEST(ParityBitmap, BinIndicesInRange) {
  SaltedHash h(7);
  Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t bin = BinIndex(rng.Next(), h, 127);
    EXPECT_GE(bin, 1u);
    EXPECT_LE(bin, 127u);
  }
}

TEST(ParityBitmap, XorSumAndParityConsistent) {
  SaltedHash h(3);
  Xoshiro256 rng(4);
  std::vector<uint64_t> elements;
  for (int i = 0; i < 500; ++i) elements.push_back(rng.Next() | 1);
  auto pb = ParityBitmap::Build(elements, h, 127);

  // Recompute independently.
  std::vector<uint64_t> xor_sum(128, 0);
  std::vector<int> count(128, 0);
  for (uint64_t e : elements) {
    const uint64_t b = BinIndex(e, h, 127);
    xor_sum[b] ^= e;
    ++count[b];
  }
  for (int i = 1; i <= 127; ++i) {
    EXPECT_EQ(pb.xor_sum[i], xor_sum[i]);
    EXPECT_EQ(pb.parity[i], count[i] % 2);
  }
}

TEST(ParityBitmap, WorksWithUnorderedSetInput) {
  SaltedHash h(9);
  std::unordered_set<uint64_t> elements = {5, 10, 15, 20};
  auto pb = ParityBitmap::Build(elements, h, 63);
  int nonzero = 0;
  for (int i = 1; i <= 63; ++i) nonzero += pb.parity[i];
  EXPECT_GE(nonzero, 1);
  EXPECT_LE(nonzero, 4);
}

TEST(ParityBitmap, SketchOfDifferenceDecodesToDifferingBins) {
  // The heart of Procedure 2: sketch(A-bitmap) merged with sketch(B-bitmap)
  // decodes to exactly the bins whose parities differ.
  const int n = 127;
  GF2m field(7);
  SaltedHash h(11);
  Xoshiro256 rng(6);

  std::vector<uint64_t> common, a_extra;
  for (int i = 0; i < 300; ++i) common.push_back(rng.Next() | 1);
  for (int i = 0; i < 4; ++i) a_extra.push_back(rng.Next() | 1);

  std::vector<uint64_t> a = common;
  a.insert(a.end(), a_extra.begin(), a_extra.end());
  auto pa = ParityBitmap::Build(a, h, n);
  auto pb = ParityBitmap::Build(common, h, n);

  std::set<uint64_t> differing;
  for (int i = 1; i <= n; ++i) {
    if (pa.parity[i] != pb.parity[i]) differing.insert(i);
  }

  PowerSumSketch sa = pa.ToSketch(field, 13);
  sa.Merge(pb.ToSketch(field, 13));
  auto decoded = sa.Decode();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::set<uint64_t>(decoded->begin(), decoded->end()), differing);
}

TEST(ParityBitmap, DoubleInsertCancelsParity) {
  SaltedHash h(13);
  std::vector<uint64_t> elements = {42, 42};
  auto pb = ParityBitmap::Build(elements, h, 63);
  for (int i = 1; i <= 63; ++i) {
    EXPECT_EQ(pb.parity[i], 0);
    EXPECT_EQ(pb.xor_sum[i], 0u);
  }
}

}  // namespace
}  // namespace pbs
