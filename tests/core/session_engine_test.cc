// Sans-I/O session engine: chunking robustness, error propagation, and
// event-loop ergonomics.
//
// The load-bearing guarantee is byte-level: a SessionEngine fed one byte
// at a time (or any random chunking) must produce a session
// byte-identical to the blocking drivers — same difference, same rounds,
// same d-hat, same wire accounting — for every registered scheme. On top
// of that: responders reject malformed streams (wrong version, unknown
// scheme) with an ERROR frame the initiator surfaces verbatim, and
// NeededBytes() always names the exact count a blocking reader should
// pull next.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "pbs/common/rng.h"
#include "pbs/core/messages.h"
#include "pbs/core/session_engine.h"
#include "pbs/core/transport.h"
#include "pbs/core/wire_session.h"
#include "pbs/sim/workload.h"

namespace pbs {
namespace {

using wire::FrameStatus;
using wire::FrameType;
using wire::WireFrame;

// Runs the threaded blocking drivers over a loopback transport pair — the
// reference the sans-I/O engine must match byte for byte.
SessionResult BlockingReference(const SessionConfig& config,
                                const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) {
  auto transports = MakeLoopbackTransportPair();
  std::unique_ptr<ByteTransport> initiator_end = std::move(transports.first);
  std::unique_ptr<ByteTransport> responder_end = std::move(transports.second);
  std::thread responder([transport = std::move(responder_end), &b]() mutable {
    RunResponderSession(*transport, b);
  });
  SessionResult result = RunInitiatorSession(*initiator_end, config, a);
  initiator_end.reset();  // EOF unblocks an aborted responder.
  responder.join();
  return result;
}

// Pumps two engines against each other on the calling thread, moving
// outbound bytes in chunks of next_chunk() bytes (clamped to >= 1).
template <typename ChunkFn>
void PumpEngines(SessionEngine* initiator, SessionEngine* responder,
                 ChunkFn next_chunk) {
  std::vector<uint8_t> buffer(1 << 16);
  bool progress = true;
  while (progress) {
    progress = false;
    while (initiator->Status() == SessionStatus::kWantWrite) {
      const size_t want = std::max<size_t>(1, next_chunk());
      const size_t n =
          initiator->Poll(buffer.data(), std::min(want, buffer.size()));
      responder->Feed(buffer.data(), n);
      progress = true;
    }
    while (responder->Status() == SessionStatus::kWantWrite) {
      const size_t want = std::max<size_t>(1, next_chunk());
      const size_t n =
          responder->Poll(buffer.data(), std::min(want, buffer.size()));
      initiator->Feed(buffer.data(), n);
      progress = true;
    }
  }
}

void ExpectIdentical(const SessionResult& engine_run,
                     const SessionResult& reference) {
  ASSERT_EQ(engine_run.ok, reference.ok) << engine_run.error;
  EXPECT_EQ(engine_run.error, reference.error);
  EXPECT_EQ(engine_run.scheme, reference.scheme);
  EXPECT_EQ(engine_run.d_hat, reference.d_hat);
  EXPECT_EQ(engine_run.outcome.success, reference.outcome.success);
  EXPECT_EQ(engine_run.outcome.rounds, reference.outcome.rounds);
  EXPECT_EQ(engine_run.outcome.difference, reference.outcome.difference);
  EXPECT_EQ(engine_run.outcome.data_bytes, reference.outcome.data_bytes);
  EXPECT_EQ(engine_run.outcome.estimator_bytes,
            reference.outcome.estimator_bytes);
  EXPECT_EQ(engine_run.outcome.wire_bytes, reference.outcome.wire_bytes);
  EXPECT_EQ(engine_run.outcome.wire_frames, reference.outcome.wire_frames);
}

// The torture test: one byte at a time, then seeded random chunk sizes.
// Every scheme, estimate phase included; outcomes must be byte-identical
// to the blocking drivers.
TEST(SessionEngine, ChunkedFeedsMatchBlockingDriverForEveryScheme) {
  const SetPair pair = GenerateTwoSidedPair(1500, 20, 25, 32, 0xC4A);
  for (const std::string& name : SchemeRegistry::Instance().Names()) {
    SCOPED_TRACE(name);
    SessionConfig config;
    config.scheme_name = name;
    config.options.pbs.max_rounds = 8;
    config.options.pbs.target_rounds = 3;
    config.seed = 0x5EED;
    config.estimate_seed = 0xE571;
    const SessionResult reference = BlockingReference(config, pair.a, pair.b);

    {
      SCOPED_TRACE("one byte at a time");
      SessionEngine initiator = SessionEngine::Initiator(config, pair.a);
      SessionEngine responder = SessionEngine::Responder(pair.b);
      PumpEngines(&initiator, &responder, [] { return size_t{1}; });
      ExpectIdentical(initiator.TakeResult(), reference);
      EXPECT_TRUE(responder.result().ok) << responder.result().error;
    }
    {
      SCOPED_TRACE("random chunks");
      Xoshiro256 rng(0xC0FFEE ^ std::hash<std::string>{}(name));
      SessionEngine initiator = SessionEngine::Initiator(config, pair.a);
      SessionEngine responder = SessionEngine::Responder(pair.b);
      PumpEngines(&initiator, &responder,
                  [&rng] { return 1 + rng.NextBounded(97); });
      ExpectIdentical(initiator.TakeResult(), reference);
      EXPECT_TRUE(responder.result().ok) << responder.result().error;
    }
  }
}

// A responder whose registry lacks the requested scheme must say so in an
// ERROR frame, and the initiator must surface that text — not a generic
// transport failure. (Registry injection stands in for version-skewed
// deployments where only one side knows a scheme.)
TEST(SessionEngine, ResponderSchemeRejectionReachesInitiator) {
  SchemeRegistry empty_registry;  // Knows no schemes at all.
  SessionConfig config;
  config.scheme_name = "pbs";
  config.exact_d = 4.0;
  SessionEngine initiator = SessionEngine::Initiator(config, {1, 2, 3});
  SessionEngine responder =
      SessionEngine::Responder({1, 2, 4}, &empty_registry);
  PumpEngines(&initiator, &responder, [] { return size_t{512}; });

  EXPECT_EQ(initiator.Status(), SessionStatus::kError);
  EXPECT_NE(initiator.result().error.find("responder rejected"),
            std::string::npos)
      << initiator.result().error;
  EXPECT_NE(initiator.result().error.find("unknown scheme 'pbs'"),
            std::string::npos)
      << initiator.result().error;
  EXPECT_EQ(responder.Status(), SessionStatus::kError);
}

// A frame with an alien version byte is answered with an ERROR frame
// (emitted at OUR version so the peer can decode it) before the responder
// gives up — the peer learns "unsupported wire version" instead of
// watching the connection drop.
TEST(SessionEngine, ResponderSendsErrorFrameOnBadVersion) {
  WireFrame alien;
  alien.version = wire::kWireVersion + 1;
  alien.type = FrameType::kHello;
  alien.payload = {1, 2, 3};
  const std::vector<uint8_t> encoded = wire::EncodeFrame(alien);

  SessionEngine responder = SessionEngine::Responder({1, 2, 3});
  responder.Feed(encoded.data(), encoded.size());
  ASSERT_EQ(responder.Status(), SessionStatus::kWantWrite);

  std::vector<uint8_t> reply(responder.outbound_size());
  responder.Poll(reply.data(), reply.size());
  EXPECT_EQ(responder.Status(), SessionStatus::kError);
  EXPECT_EQ(responder.result().error, "unsupported wire version");

  WireFrame decoded;
  size_t consumed = 0;
  ASSERT_EQ(wire::DecodeFrame(reply.data(), reply.size(), &decoded, &consumed),
            FrameStatus::kOk);
  EXPECT_EQ(decoded.type, FrameType::kError);
  const std::string text(decoded.payload.begin(), decoded.payload.end());
  EXPECT_EQ(text, "unsupported wire version");

  // And an initiator that receives that ERROR surfaces the text verbatim.
  SessionConfig config;
  config.exact_d = 1.0;
  SessionEngine initiator = SessionEngine::Initiator(config, {1});
  std::vector<uint8_t> hello(initiator.outbound_size());
  initiator.Poll(hello.data(), hello.size());
  initiator.Feed(reply.data(), reply.size());
  EXPECT_EQ(initiator.Status(), SessionStatus::kError);
  EXPECT_EQ(initiator.result().error,
            "responder rejected: unsupported wire version");
}

// NeededBytes() names exactly what a blocking reader should pull next:
// the rest of the 20-byte header, then the rest of the payload.
TEST(SessionEngine, NeededBytesTracksFrameBoundaries) {
  SessionConfig config;
  config.exact_d = 2.0;
  SessionEngine initiator = SessionEngine::Initiator(config, {1, 2});
  std::vector<uint8_t> hello(initiator.outbound_size());
  initiator.Poll(hello.data(), hello.size());
  ASSERT_EQ(initiator.Status(), SessionStatus::kWantRead);
  EXPECT_EQ(initiator.NeededBytes(), wire::kFrameHeaderSize);

  // Craft the responder's ERROR reply with a 7-byte payload and feed it
  // in dribbles.
  WireFrame error_frame;
  error_frame.type = FrameType::kError;
  error_frame.payload = {'f', 'a', 'i', 'l', 'u', 'r', 'e'};
  const std::vector<uint8_t> encoded = wire::EncodeFrame(error_frame);

  initiator.Feed(encoded.data(), 5);
  EXPECT_EQ(initiator.NeededBytes(), wire::kFrameHeaderSize - 5);
  initiator.Feed(encoded.data() + 5, wire::kFrameHeaderSize - 5);
  EXPECT_EQ(initiator.NeededBytes(), 7u);  // Header parsed: payload next.
  initiator.Feed(encoded.data() + wire::kFrameHeaderSize, 7);
  EXPECT_EQ(initiator.Status(), SessionStatus::kError);
  EXPECT_EQ(initiator.result().error, "responder rejected: failure");
}

// EOF mid-stream keeps the classic blocking-driver diagnostics.
TEST(SessionEngine, EofProducesTransportClosedDiagnostics) {
  SessionConfig config;
  config.exact_d = 1.0;
  {
    SessionEngine initiator = SessionEngine::Initiator(config, {1});
    std::vector<uint8_t> hello(initiator.outbound_size());
    initiator.Poll(hello.data(), hello.size());
    initiator.FeedEof();
    EXPECT_EQ(initiator.Status(), SessionStatus::kError);
    EXPECT_EQ(initiator.result().error,
              "transport closed while reading frame header");
  }
  {
    WireFrame frame;
    frame.type = FrameType::kError;
    frame.payload = {'x', 'y', 'z'};
    const std::vector<uint8_t> encoded = wire::EncodeFrame(frame);
    SessionEngine initiator = SessionEngine::Initiator(config, {1});
    std::vector<uint8_t> hello(initiator.outbound_size());
    initiator.Poll(hello.data(), hello.size());
    initiator.Feed(encoded.data(), wire::kFrameHeaderSize + 1);
    initiator.FeedEof();
    EXPECT_EQ(initiator.Status(), SessionStatus::kError);
    EXPECT_EQ(initiator.result().error,
              "transport closed while reading frame payload");
  }
}

// The loopback transport pair is usable from ONE thread via the engines:
// Send on one end, TryRecv on the other, nobody ever touches the blocking
// condition-variable path — the historical single-thread deadlock is
// structurally impossible.
TEST(SessionEngine, SingleThreadedLoopbackTransportPump) {
  const SetPair pair = GenerateTwoSidedPair(2000, 15, 20, 32, 0x515);
  SessionConfig config;
  config.scheme_name = "pbs";
  config.options.pbs.strong_verification = true;
  config.exact_d = static_cast<double>(pair.truth_diff.size());

  auto transports = MakeLoopbackTransportPair();
  ByteTransport& a_end = *transports.first;
  ByteTransport& b_end = *transports.second;
  SessionEngine initiator = SessionEngine::Initiator(config, pair.a);
  SessionEngine responder = SessionEngine::Responder(pair.b);

  uint8_t buffer[4096];
  bool progress = true;
  while (progress) {
    progress = false;
    while (initiator.Status() == SessionStatus::kWantWrite) {
      const size_t n = initiator.Poll(buffer, sizeof(buffer));
      ASSERT_TRUE(a_end.Send(buffer, n));
      progress = true;
    }
    for (size_t n; (n = b_end.TryRecv(buffer, sizeof(buffer))) > 0;) {
      responder.Feed(buffer, n);
      progress = true;
    }
    while (responder.Status() == SessionStatus::kWantWrite) {
      const size_t n = responder.Poll(buffer, sizeof(buffer));
      ASSERT_TRUE(b_end.Send(buffer, n));
      progress = true;
    }
    for (size_t n; (n = a_end.TryRecv(buffer, sizeof(buffer))) > 0;) {
      initiator.Feed(buffer, n);
      progress = true;
    }
  }

  ASSERT_EQ(initiator.Status(), SessionStatus::kDone)
      << initiator.result().error;
  ASSERT_EQ(responder.Status(), SessionStatus::kDone)
      << responder.result().error;
  std::vector<uint64_t> recovered = initiator.TakeResult().outcome.difference;
  std::vector<uint64_t> truth = pair.truth_diff;
  std::sort(recovered.begin(), recovered.end());
  std::sort(truth.begin(), truth.end());
  EXPECT_EQ(recovered, truth);
}

}  // namespace
}  // namespace pbs
