#include "pbs/core/group_state.h"

#include <gtest/gtest.h>

#include <set>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

TEST(GroupState, RootUnitsHaveDistinctKeys) {
  HashFamily family(42);
  std::set<uint64_t> keys;
  for (uint32_t g = 0; g < 500; ++g) {
    EXPECT_TRUE(keys.insert(UnitCore::Root(family, g).key).second);
  }
}

TEST(GroupState, ChildrenDeterministicAndDistinct) {
  HashFamily family(42);
  UnitCore root = UnitCore::Root(family, 3);
  UnitCore c0 = root.Child(family, 0);
  UnitCore c0_again = root.Child(family, 0);
  UnitCore c1 = root.Child(family, 1);
  EXPECT_EQ(c0.key, c0_again.key);
  EXPECT_NE(c0.key, c1.key);
  EXPECT_EQ(c0.depth, 1);
  EXPECT_EQ(c0.group, 3u);
  EXPECT_EQ(c0.split_path.size(), 1u);
}

TEST(GroupState, GroupPartitionIsConsistent) {
  HashFamily f1(7), f2(7);
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x = rng.Next();
    EXPECT_EQ(GroupOf(f1, x, 200), GroupOf(f2, x, 200));
  }
}

TEST(GroupState, RootSubUniverseMatchesGroupHash) {
  HashFamily family(9);
  Xoshiro256 rng(2);
  const uint32_t g = 50;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t x = rng.Next();
    const uint32_t group = GroupOf(family, x, g);
    for (uint32_t other = 0; other < g; other += 7) {
      const bool expected = other == group;
      EXPECT_EQ(UnitCore::Root(family, other).InSubUniverse(family, x, g),
                expected);
    }
  }
}

TEST(GroupState, SplitPartitionsElementsExactly) {
  HashFamily family(11);
  UnitCore root = UnitCore::Root(family, 0);
  const uint64_t salt = root.SplitSalt(family);
  Xoshiro256 rng(3);
  int counts[3] = {};
  for (int i = 0; i < 30000; ++i) {
    const uint8_t c = UnitCore::ChildIndexOf(rng.Next(), salt);
    ASSERT_LT(c, 3);
    ++counts[c];
  }
  // Roughly uniform thirds.
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(GroupState, ChildSubUniverseRequiresFullPath) {
  HashFamily family(13);
  const uint32_t g = 10;
  Xoshiro256 rng(4);
  UnitCore root = UnitCore::Root(family, 2);
  const uint64_t salt = root.SplitSalt(family);
  UnitCore children[3] = {root.Child(family, 0), root.Child(family, 1),
                          root.Child(family, 2)};
  int checked = 0;
  for (int i = 0; i < 50000 && checked < 300; ++i) {
    const uint64_t x = rng.Next();
    if (GroupOf(family, x, g) != 2) continue;
    ++checked;
    const uint8_t expected = UnitCore::ChildIndexOf(x, salt);
    for (uint8_t c = 0; c < 3; ++c) {
      EXPECT_EQ(children[c].InSubUniverse(family, x, g), c == expected);
    }
  }
  EXPECT_GE(checked, 300);
}

TEST(GroupState, GrandchildrenPathsNested) {
  HashFamily family(17);
  UnitCore root = UnitCore::Root(family, 0);
  UnitCore child = root.Child(family, 1);
  UnitCore grandchild = child.Child(family, 2);
  EXPECT_EQ(grandchild.depth, 2);
  EXPECT_EQ(grandchild.split_path.size(), 2u);
  EXPECT_EQ(grandchild.split_path[0].second, 1);
  EXPECT_EQ(grandchild.split_path[1].second, 2);
}

TEST(GroupState, BinSaltVariesByRound) {
  HashFamily family(19);
  UnitCore root = UnitCore::Root(family, 0);
  EXPECT_NE(root.BinSalt(family, 1), root.BinSalt(family, 2));
  EXPECT_EQ(root.BinSalt(family, 1), root.BinSalt(family, 1));
}

}  // namespace
}  // namespace pbs
