#include "pbs/core/params.h"

#include <gtest/gtest.h>

namespace pbs {
namespace {

TEST(Params, PlanForPaperInstance) {
  PbsConfig config;
  const PbsPlan plan = PlanFor(config, 1000);
  EXPECT_EQ(plan.params.g, 200);
  EXPECT_EQ(plan.params.n, 127);
  EXPECT_EQ(plan.params.m, 7);
  EXPECT_EQ(plan.params.t, 13);
}

TEST(Params, PlanForZeroDifference) {
  PbsConfig config;
  const PbsPlan plan = PlanFor(config, 0);
  EXPECT_EQ(plan.params.g, 1);
  EXPECT_GE(plan.params.t, 1);
  EXPECT_GE(plan.params.n, 63);
}

TEST(Params, PlanScalesGroupsWithD) {
  PbsConfig config;
  EXPECT_EQ(PlanFor(config, 10000).params.g, 2000);
  EXPECT_EQ(PlanFor(config, 12).params.g, 3);
}

TEST(Params, FallbackWhenInfeasible) {
  PbsConfig config;
  config.target_rounds = 1;  // Infeasible within the default n range.
  const PbsPlan plan = PlanFor(config, 1000);
  // Still returns a runnable parameterization (widest corner).
  EXPECT_GE(plan.params.n, 63);
  EXPECT_GE(plan.params.t, 5);
  EXPECT_EQ(plan.params.lower_bound, 0.0);
}

TEST(Params, InflateEstimateMatchesPaperGamma) {
  EXPECT_EQ(InflateEstimate(100.0, 1.38), 138);
  EXPECT_EQ(InflateEstimate(0.0, 1.38), 0);
  EXPECT_EQ(InflateEstimate(-3.0, 1.38), 0);
  EXPECT_EQ(InflateEstimate(1.0, 1.38), 2);  // Ceil.
}

TEST(Params, DeltaSweepChangesGrouping) {
  for (int delta : {3, 5, 10, 30}) {
    PbsConfig config;
    config.delta = delta;
    config.optimizer.t_low = 1.5;
    config.optimizer.t_high = 3.5;
    const PbsPlan plan = PlanFor(config, 3000);
    EXPECT_EQ(plan.params.g, (3000 + delta - 1) / delta) << "delta=" << delta;
    EXPECT_GE(plan.params.t, static_cast<int>(1.5 * delta)) << delta;
  }
}

}  // namespace
}  // namespace pbs
