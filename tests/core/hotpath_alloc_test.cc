// Counting-allocator regression test for the zero-allocation hot path.
//
// Overrides the global new/delete pair for the whole test binary with
// malloc-backed implementations that count allocations, then pins the
// load-bearing property of the Workspace refactor: once warm, one full PBS
// round encode -> decode cycle -- parity-bitmap binning, power-sum
// sketching, wire (de)serialization, BM + Chien decoding, element
// recovery, verification -- performs ZERO heap allocations. Endpoint-level
// round-request encoding and the IBF peeling path are pinned too.
//
// If any of these tests regress, a std::vector (or node container) crept
// back into a per-round code path; thread it through pbs::Workspace or a
// reused buffer instead.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pbs/bch/berlekamp_massey.h"
#include "pbs/bch/pgz_decoder.h"
#include "pbs/bch/power_sum_sketch.h"
#include "pbs/common/bitio.h"
#include "pbs/common/workspace.h"
#include "pbs/core/element_store.h"
#include "pbs/core/params.h"
#include "pbs/core/parity_bitmap.h"
#include "pbs/core/pbs_endpoints.h"
#include "pbs/core/session_engine.h"
#include "pbs/core/transport.h"
#include "pbs/gf/gf2m.h"
#include "pbs/gf/gfpoly.h"
#include "pbs/gf/roots.h"
#include "pbs/hash/hash_family.h"
#include "pbs/ibf/invertible_bloom_filter.h"
#include "pbs/net/reconcile_server.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t AllocCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  // aligned_alloc requires size to be a multiple of align.
  size = (size + align - 1) / align * align;
  return std::aligned_alloc(align, size);
}

}  // namespace

// Replacement global allocation functions (C++17 set, sized and aligned
// variants included). Defining them in one TU overrides the defaults for
// the entire pbs_tests binary; the other tests are unaffected beyond a
// relaxed atomic increment per allocation.
void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace pbs {
namespace {

TEST(HotpathAlloc, CountingHooksAreLive) {
  const std::uint64_t before = AllocCount();
  auto* sink = new std::vector<uint64_t>(100);
  const std::uint64_t after = AllocCount();
  delete sink;
  EXPECT_GT(after, before);
}

// One full PBS round cycle at the kernel level, exactly the per-unit work
// PbsAlice::MakeRoundRequest, PbsBob::HandleRoundRequest, and
// PbsAlice::HandleRoundReply perform: Alice bins and sketches her unit and
// serializes the sketch; Bob deserializes, bins his side, merges, BCH
// decodes the difference bitmap and replies with positions + XOR sums;
// Alice recovers the distinct elements. After a warm-up round, repeating
// the cycle (with a fresh per-round bin salt, as the real protocol does)
// must not allocate.
TEST(HotpathAlloc, PbsRoundKernelCycleIsAllocationFree) {
  const GF2m field(8);  // n = 255: a Chien-searchable parity-bitmap field.
  const int n = 255;
  const int t = 12;
  const int d = 6;

  // Alice's and Bob's unit contents: shared base plus d Bob-only extras.
  std::vector<uint64_t> alice_elems, bob_elems;
  for (uint64_t e = 1; e <= 40; ++e) {
    alice_elems.push_back(e * 2654435761u);
    bob_elems.push_back(e * 2654435761u);
  }
  std::vector<uint64_t> expected_diff;
  for (uint64_t e = 1; e <= static_cast<uint64_t>(d); ++e) {
    bob_elems.push_back(e * 40503u + 7);
    expected_diff.push_back(e * 40503u + 7);
  }

  const HashFamily family(0xC0FFEE);
  Workspace ws;
  ParityBitmap pb_alice, pb_bob;
  PowerSumSketch sketch_alice(field, t);
  PowerSumSketch wire_sketch(field, t);
  PowerSumSketch diff_sketch(field, t);
  BitWriter writer;
  std::vector<uint64_t> positions;
  std::vector<uint64_t> recovered;
  positions.reserve(t);
  recovered.reserve(t);

  // Pre-warm the workspace and output buffers at the worst case the
  // (n, t) plan admits -- a full-capacity decode of t elements -- so no
  // later round can exceed a buffer size seen here.
  {
    PowerSumSketch worst(field, t);
    for (uint64_t e = 1; e <= static_cast<uint64_t>(t); ++e) worst.Toggle(e);
    ASSERT_TRUE(worst.DecodeInto(&positions, ws));
  }

  int decode_failures = 0;
  int misattributed = 0;  // Recovered element outside the planted diff.
  int max_recovered = 0;
  const auto run_cycle = [&](int round) {
    const SaltedHash h(family.Salt(HashFamily::kBinPartition,
                                   static_cast<uint64_t>(round)));
    // Alice: encode.
    ParityBitmap::BuildInto(alice_elems, h, n, &pb_alice);
    pb_alice.ToSketchInto(&sketch_alice);
    writer.Clear();
    sketch_alice.Serialize(&writer);
    // Bob: decode the difference bitmap.
    BitReader reader(writer.bytes());
    wire_sketch.ReadFrom(&reader);
    ParityBitmap::BuildInto(bob_elems, h, n, &pb_bob);
    pb_bob.ToSketchInto(&diff_sketch);
    diff_sketch.Merge(wire_sketch);
    if (!diff_sketch.DecodeInto(&positions, ws)) {
      ++decode_failures;
      return;
    }
    // Alice: recover candidate distinct elements from (position, XOR sum)
    // pairs (Procedure 1). Rounds where two planted differences collide in
    // one bin legitimately recover fewer than d elements (the real
    // protocol's next round catches them), so assert soundness here --
    // everything recovered is a planted difference -- not completeness.
    recovered.clear();
    for (uint64_t pos : positions) {
      const uint64_t s = pb_alice.xor_sum[pos] ^ pb_bob.xor_sum[pos];
      if (s != 0 && BinIndex(s, h, n) == pos) recovered.push_back(s);
    }
    for (uint64_t s : recovered) {
      bool planted = false;
      for (uint64_t e : expected_diff) planted = planted || (e == s);
      if (!planted) ++misattributed;
    }
    max_recovered = std::max(max_recovered, static_cast<int>(recovered.size()));
  };

  // Warm-up: reaches steady-state capacities everywhere.
  for (int round = 1; round <= 3; ++round) run_cycle(round);
  ASSERT_EQ(decode_failures, 0);

  const std::uint64_t before = AllocCount();
  for (int round = 4; round <= 40; ++round) run_cycle(round);
  const std::uint64_t after = AllocCount();
  EXPECT_EQ(after - before, 0u)
      << "steady-state PBS round cycle allocated " << (after - before)
      << " times";
  EXPECT_EQ(decode_failures, 0);
  EXPECT_EQ(misattributed, 0);
  // Over dozens of independent bin partitions, at least one round places
  // all d differences in distinct bins and recovers every one of them.
  EXPECT_EQ(max_recovered, d);
}

// Endpoint level: after warm-up, PbsAlice's round-request encoding (the
// buffer-reusing overload) is allocation-free across rounds.
TEST(HotpathAlloc, EndpointRoundEncodeIsAllocationFree) {
  PbsConfig config;
  std::vector<uint64_t> elements;
  for (uint64_t e = 1; e <= 500; ++e) {
    // Odd multiplier: a bijection mod 2^32, so every signature is nonzero
    // and fits config.sig_bits.
    elements.push_back((e * 0x9E3779B9u) & 0xFFFFFFFFu);
  }

  PbsAlice alice(elements, config, /*seed=*/42);
  alice.SetDifferenceEstimate(/*d_used=*/20);

  std::vector<uint8_t> request;
  alice.MakeRoundRequest(&request);  // Warm-up round.
  alice.MakeRoundRequest(&request);
  ASSERT_FALSE(request.empty());

  const std::uint64_t before = AllocCount();
  for (int i = 0; i < 10; ++i) alice.MakeRoundRequest(&request);
  const std::uint64_t after = AllocCount();
  EXPECT_EQ(after - before, 0u)
      << "steady-state round encoding allocated " << (after - before)
      << " times";
}

// BCH decoder kernels directly: BM synthesis and the PGZ reference solver
// on a warm workspace.
TEST(HotpathAlloc, DecoderKernelsAreAllocationFree) {
  const GF2m field(10);
  const int t = 20;
  PowerSumSketch sketch(field, t);
  for (uint64_t e = 3; e <= 40; e += 3) sketch.Toggle(e);

  Workspace ws;
  std::vector<uint64_t> decoded;

  // Expand syndromes once for the raw-kernel calls.
  std::vector<uint64_t> syndromes(2 * t, 0);
  for (int k = 1; k <= 2 * t; ++k) {
    syndromes[k - 1] = (k % 2 == 1)
                           ? sketch.odd_syndromes()[(k - 1) / 2]
                           : field.Sqr(syndromes[k / 2 - 1]);
  }
  std::vector<uint64_t> lambda_bm(2 * t + 1, 0), lambda_pgz(t + 1, 0);

  bool all_ok = true;
  const auto run_kernels = [&] {
    all_ok = all_ok && sketch.DecodeInto(&decoded, ws);
    const BmWsResult bm = BerlekampMasseyWs(field, syndromes, ws, lambda_bm);
    all_ok = all_ok && bm.IsConsistent();
    all_ok = all_ok && PgzLocatorWs(field, syndromes, ws, lambda_pgz) ==
                           bm.degree;
  };

  // Warm-up runs the exact measured sequence twice: the first pass grows
  // buffers, the second lets the LIFO pool's buffer-to-call-site
  // assignment reach its fixed point.
  run_kernels();
  run_kernels();
  ASSERT_TRUE(all_ok);

  const std::uint64_t before = AllocCount();
  for (int i = 0; i < 20; ++i) run_kernels();
  const std::uint64_t after = AllocCount();
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(after - before, 0u)
      << "BCH kernels allocated " << (after - before) << " times";
}

// ------------------------------------------------------- session engine --
//
// The sans-I/O session layer must add ZERO allocations of its own on the
// round path: Feed's inbound buffering, frame decode, dispatch, the
// reply/request scratch, and Poll's outbound staging all reuse warmed
// buffers. To measure the layer in isolation, a probe scheme runs many
// fixed-size rounds whose endpoint work is allocation-free by
// construction; the scheme engines underneath are pinned separately above
// (their remaining allocations are proportional to productive events —
// recovered differences, unit splits — not to rounds processed).

constexpr int kProbeRounds = 48;
constexpr size_t kProbePayloadBytes = 384;

class ProbeInitiator : public ReconcileInitiator {
 public:
  std::vector<uint8_t> NextRequest() override {
    std::vector<uint8_t> out;
    NextRequestInto(&out);
    return out;
  }
  void NextRequestInto(std::vector<uint8_t>* out) override {
    ++round_;
    out->assign(kProbePayloadBytes, static_cast<uint8_t>(round_));
  }
  bool HandleReply(const std::vector<uint8_t>& reply) override {
    data_bytes_ += kProbePayloadBytes + reply.size();
    return reply.size() == kProbePayloadBytes;
  }
  bool done() const override { return round_ >= kProbeRounds; }
  ReconcileOutcome TakeOutcome() override {
    ReconcileOutcome outcome;
    outcome.success = true;
    outcome.rounds = kProbeRounds;
    outcome.data_bytes = data_bytes_;
    return outcome;
  }

 private:
  int round_ = 0;
  size_t data_bytes_ = 0;
};

class ProbeResponder : public ReconcileResponder {
 public:
  bool HandleRequest(const std::vector<uint8_t>& request,
                     std::vector<uint8_t>* reply) override {
    if (request.size() != kProbePayloadBytes) return false;
    reply->assign(kProbePayloadBytes, request[0]);
    return true;
  }
};

class ProbeScheme : public SetReconciler {
 public:
  const char* name() const override { return "alloc-probe"; }
  const char* display_name() const override { return "AllocProbe"; }
  bool supports_rounds() const override { return true; }
  ReconcileOutcome Reconcile(const std::vector<uint64_t>&,
                             const std::vector<uint64_t>&, double,
                             uint64_t) const override {
    return ReconcileOutcome{};
  }
  std::unique_ptr<ReconcileInitiator> CreateInitiator(
      std::vector<uint64_t>, double, uint64_t) const override {
    return std::make_unique<ProbeInitiator>();
  }
  std::unique_ptr<ReconcileResponder> CreateResponder(
      std::vector<uint64_t>, double, uint64_t) const override {
    return std::make_unique<ProbeResponder>();
  }
};

TEST(HotpathAlloc, SessionEngineSteadyStateRoundsAreAllocationFree) {
  // A private registry keeps the probe scheme out of the registry-wide
  // parity suites; the engines take it by injection.
  SchemeRegistry registry;
  ASSERT_TRUE(registry.Register("alloc-probe", "AllocProbe",
                                [](const SchemeOptions&) {
                                  return std::make_unique<ProbeScheme>();
                                }));

  SessionConfig config;
  config.scheme_name = "alloc-probe";
  config.exact_d = 4.0;  // Skip the (once-per-session) estimate phase.
  const std::vector<uint64_t> elements = {1, 2, 3, 4};
  SessionEngine initiator =
      SessionEngine::Initiator(config, elements, &registry);
  SessionEngine responder = SessionEngine::Responder(elements, &registry);

  // One pump = one protocol exchange: the initiator's pending frame
  // crosses, the responder's reply crosses back, and dispatch queues the
  // next request.
  uint8_t chunk[1024];
  const auto pump_exchange = [&] {
    while (initiator.Status() == SessionStatus::kWantWrite) {
      const size_t n = initiator.Poll(chunk, sizeof(chunk));
      responder.Feed(chunk, n);
    }
    while (responder.Status() == SessionStatus::kWantWrite) {
      const size_t n = responder.Poll(chunk, sizeof(chunk));
      initiator.Feed(chunk, n);
    }
  };

  // Warm-up: handshake plus enough rounds for every buffer — inbound,
  // outbound, frame payload, request/reply scratch — to reach peak size.
  for (int i = 0; i < 8; ++i) pump_exchange();
  ASSERT_EQ(initiator.Status(), SessionStatus::kWantWrite);

  const std::uint64_t before = AllocCount();
  for (int i = 0; i < 20; ++i) pump_exchange();
  const std::uint64_t after = AllocCount();
  EXPECT_EQ(after - before, 0u)
      << "steady-state SessionEngine Feed/Poll round processing allocated "
      << (after - before) << " times";

  for (int i = 0; i < kProbeRounds + 4 &&
                  initiator.Status() != SessionStatus::kDone;
       ++i) {
    pump_exchange();
  }
  ASSERT_EQ(initiator.Status(), SessionStatus::kDone)
      << initiator.result().error;
  EXPECT_TRUE(initiator.result().outcome.success);
  EXPECT_EQ(initiator.result().outcome.rounds, kProbeRounds);
  EXPECT_EQ(responder.Status(), SessionStatus::kDone);
}

// ------------------------------------------------------------ shard loop --
//
// The server's whole steady-state serving path — EventLoop::Wait, the
// shard's readiness dispatch, recv into the reused read buffer, engine
// Feed/Poll, send, interest updates, LRU touch, per-shard counters — must
// add ZERO allocations per round on top of the engine (pinned above).
// The probe runs over a real TCP connection against a sharded server;
// the ping-pong protocol guarantees that between the client receiving
// reply k and sending request k+1 the server is idle, so the global
// allocation counter sampled at exchanges 10 and 40 brackets exactly the
// server threads' handling of 30 steady-state exchanges (the client side
// of the loop below touches no heap: stack buffers + warmed engine).
TEST(HotpathAlloc, ShardLoopSteadyStateRoundsAreAllocationFree) {
  SchemeRegistry registry;
  ASSERT_TRUE(registry.Register("alloc-probe", "AllocProbe",
                                [](const SchemeOptions&) {
                                  return std::make_unique<ProbeScheme>();
                                }));

  ServerOptions options;
  options.registry = &registry;
  options.shards = 2;  // Exercises the acceptor→shard handoff too.
  options.serve_limit = 1;
  std::string error;
  auto server = ReconcileServer::Create(options, {1, 2, 3, 4}, &error);
  ASSERT_NE(server, nullptr) << error;
  std::thread serving([&server] { server->Run(); });

  SessionConfig config;
  config.scheme_name = "alloc-probe";
  config.exact_d = 4.0;  // Skip the estimate phase.
  SessionEngine initiator = SessionEngine::Initiator(
      config, std::vector<uint64_t>{1, 2, 3, 4}, &registry);
  auto transport = TcpConnect("127.0.0.1", server->port(), &error);
  ASSERT_NE(transport, nullptr) << error;

  uint8_t buf[1024];
  int exchanges = 0;
  std::uint64_t before = 0, after = 0;
  while (true) {
    const SessionStatus status = initiator.Status();
    if (status == SessionStatus::kDone || status == SessionStatus::kError) {
      break;
    }
    if (status == SessionStatus::kWantWrite) {
      ASSERT_TRUE(
          transport->Send(initiator.outbound_data(),
                          initiator.outbound_size()));
      initiator.ConsumeOutbound(initiator.outbound_size());
      continue;
    }
    // kWantRead: one blocking read of exactly what the frame needs.
    const size_t need = initiator.NeededBytes();
    ASSERT_LE(need, sizeof(buf));
    ASSERT_TRUE(transport->Recv(buf, need));
    initiator.Feed(buf, need);
    if (initiator.Status() != SessionStatus::kWantRead) {
      // A full exchange completed: the server fully processed our last
      // request and is idle again.
      ++exchanges;
      if (exchanges == 10) before = AllocCount();
      if (exchanges == 40) after = AllocCount();
    }
  }
  ASSERT_EQ(initiator.Status(), SessionStatus::kDone)
      << initiator.result().error;
  EXPECT_TRUE(initiator.result().outcome.success);
  ASSERT_GE(exchanges, 40) << "probe session too short to sample";
  EXPECT_EQ(after - before, 0u)
      << "steady-state shard serving loop allocated " << (after - before)
      << " times over 30 exchanges";

  serving.join();  // serve_limit = 1: returns by itself.
  EXPECT_EQ(server->stats().completed, 1u);
}

// IBF peeling with workspace scratch and a reused result.
TEST(HotpathAlloc, IbfDecodeIntoIsAllocationFree) {
  const uint64_t salt = 0xABCDEF;
  InvertibleBloomFilter a(/*cells=*/120, /*num_hashes=*/3, salt,
                          /*sig_bits=*/32);
  InvertibleBloomFilter b(/*cells=*/120, /*num_hashes=*/3, salt,
                          /*sig_bits=*/32);
  for (uint64_t e = 1; e <= 200; ++e) {
    a.Insert(e * 48271u);
    b.Insert(e * 48271u);
  }
  for (uint64_t e = 1; e <= 15; ++e) a.Insert(e * 69621u);
  a.Subtract(b);

  Workspace ws;
  InvertibleBloomFilter::DecodeResult result;
  a.DecodeInto(ws, &result);  // Warm-up.
  ASSERT_TRUE(result.complete);
  ASSERT_EQ(result.positive.size(), 15u);

  const std::uint64_t before = AllocCount();
  for (int i = 0; i < 20; ++i) a.DecodeInto(ws, &result);
  const std::uint64_t after = AllocCount();
  EXPECT_EQ(after - before, 0u)
      << "IBF peeling allocated " << (after - before) << " times";
  EXPECT_TRUE(result.complete);
}

// A single insert and a single delete on a warm, layout-configured
// MutableElementStore are allocation-free: the open-addressing key index
// reuses tombstones instead of growing, the element array has spare
// capacity from the warm-up churn, and the incremental parity-bitmap /
// syndrome / checksum maintenance runs entirely in preallocated scratch.
// Publish() (snapshot deep-copy) is the explicitly allocating slow path
// and deliberately outside this pin.
TEST(HotpathAlloc, MutableStoreSingleUpdateIsAllocationFree) {
  std::vector<uint64_t> initial;
  for (uint64_t e = 1; e <= 500; ++e) {
    // Odd multiplier mod 2^32 is a bijection: unique nonzero signatures.
    initial.push_back((e * 2654435761u) & 0xFFFFFFFFu);
  }
  MutableElementStore store(std::move(initial));
  PbsConfig config;
  config.sig_bits = 32;
  std::string error;
  ASSERT_TRUE(store.ConfigureLayout(config, 0xC11, 50, &error)) << error;

  // Warm-up: one insert/delete cycle sizes the element array past its
  // snap-fit reserve and leaves the fresh value's probe chain ending in a
  // reusable tombstone.
  const uint64_t fresh = 0xF00DF00Du;
  ASSERT_TRUE(store.ApplyInsert(fresh));
  ASSERT_TRUE(store.ApplyDelete(fresh));

  const std::uint64_t before = AllocCount();
  const bool inserted = store.ApplyInsert(fresh);
  const bool deleted = store.ApplyDelete(fresh);
  const std::uint64_t after = AllocCount();
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(deleted);
  EXPECT_EQ(after - before, 0u)
      << "warm store insert+delete allocated " << (after - before)
      << " times";

  // The store still works and publishes correctly after the counted ops.
  store.Publish();
  EXPECT_EQ(store.snapshot()->elements->size(), 500u);
}

// The lane-batched SIMD kernels behind the cross-group decode: once warm,
// DecodeBatchInto over a full batch of sketches, a raw ChienSearchBatch
// over eight staged locators, the lane-blocked ParityBitmap::BuildInto,
// and the vectorized odd-bin scan are all allocation-free at steady state.
TEST(HotpathAlloc, BatchKernelsAreAllocationFree) {
  const GF2m field(11);  // n = 2047: the benchmark plan's field.
  const int n = 2047;
  const int t = 16;
  constexpr int kB = PowerSumSketch::kDecodeBatch;

  // kB sketches with varying loads (empty through near capacity).
  std::vector<PowerSumSketch> sketches;
  sketches.reserve(kB);
  for (int i = 0; i < kB; ++i) {
    sketches.emplace_back(field, t);
    for (int e = 1; e <= 2 * i; ++e) {
      sketches[i].Toggle(static_cast<uint64_t>(e * 131 + i + 1));
    }
  }
  const PowerSumSketch* ptrs[kB];
  std::vector<std::vector<uint64_t>> outs(kB);
  std::vector<uint64_t>* out_ptrs[kB];
  uint8_t ok[kB];
  for (int i = 0; i < kB; ++i) {
    ptrs[i] = &sketches[i];
    out_ptrs[i] = &outs[i];
  }
  Workspace ws;

  // Raw batch-Chien inputs: kB planted full-capacity locators, built with
  // allocating GFPoly arithmetic outside the measured region.
  std::vector<std::vector<uint64_t>> coeffs(kB);
  std::vector<std::vector<uint64_t>> roots(kB);
  std::vector<ChienBatchPoly> polys(kB);
  for (int p = 0; p < kB; ++p) {
    GFPoly locator = GFPoly::One(field);
    for (uint64_t r = 1; r <= static_cast<uint64_t>(t); ++r) {
      locator = locator.Mul(GFPoly(field, {r * 37 + p, 1}));
    }
    coeffs[p] = locator.coeffs();
    roots[p].assign(t, 0);
  }

  // Batched bitmap build + vectorized odd-bin scan inputs.
  std::vector<uint64_t> elems;
  for (uint64_t e = 1; e <= 1000; ++e) elems.push_back(e * 2654435761u | 1);
  const SaltedHash h(0xB00B1E5);
  ParityBitmap pb;
  PowerSumSketch scan(field, t);

  const auto run_batch = [&] {
    PowerSumSketch::DecodeBatchInto(
        Span<const PowerSumSketch* const>(ptrs, kB),
        Span<std::vector<uint64_t>* const>(out_ptrs, kB),
        Span<uint8_t>(ok, kB), ws);
    for (int p = 0; p < kB; ++p) {
      polys[p] = ChienBatchPoly{coeffs[p], roots[p], 0};
    }
    ChienSearchBatch(field, Span<ChienBatchPoly>(polys.data(), kB), ws);
    ParityBitmap::BuildInto(elems, h, n, &pb);
    pb.ToSketchInto(&scan);
  };

  // Warm-up twice: the first pass grows buffers, the second lets the LIFO
  // pool's buffer-to-call-site assignment reach its fixed point.
  run_batch();
  run_batch();

  const std::uint64_t before = AllocCount();
  for (int i = 0; i < 10; ++i) run_batch();
  const std::uint64_t after = AllocCount();
  EXPECT_EQ(after - before, 0u)
      << "steady-state batch kernels allocated " << (after - before)
      << " times";
  for (int i = 0; i < kB; ++i) {
    EXPECT_EQ(ok[i], 1) << "sketch " << i;
    EXPECT_EQ(outs[i].size(), static_cast<size_t>(2 * i)) << "sketch " << i;
  }
  for (int p = 0; p < kB; ++p) EXPECT_EQ(polys[p].count, t) << "poly " << p;
}

}  // namespace
}  // namespace pbs
