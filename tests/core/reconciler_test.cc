#include "pbs/core/reconciler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "pbs/sim/workload.h"

namespace pbs {
namespace {

bool Matches(std::vector<uint64_t> got, std::vector<uint64_t> want) {
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  return got == want;
}

TEST(Reconciler, IdenticalSetsFinishImmediately) {
  SetPair pair = GenerateSetPair(5000, 0, 32, 1);
  PbsConfig config;
  auto result = PbsSession::Reconcile(pair.a, pair.b, config, 7, 0);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.difference.empty());
  EXPECT_EQ(result.rounds, 1);
}

TEST(Reconciler, SingleDifference) {
  SetPair pair = GenerateSetPair(5000, 1, 32, 2);
  PbsConfig config;
  auto result = PbsSession::Reconcile(pair.a, pair.b, config, 8, 1);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(Matches(result.difference, pair.truth_diff));
}

// Main correctness sweep over d with known d.
class ReconcilerSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReconcilerSweep, RecoversExactDifference) {
  const int d = GetParam();
  int successes = 0;
  constexpr int kTrials = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    SetPair pair = GenerateSetPair(std::max(4 * d, 2000), d, 32,
                                   1000 + trial * 31 + d);
    PbsConfig config;
    auto result =
        PbsSession::Reconcile(pair.a, pair.b, config, 50 + trial, d);
    if (result.success) {
      EXPECT_TRUE(Matches(result.difference, pair.truth_diff))
          << "claimed success but difference wrong, d=" << d;
      ++successes;
    }
  }
  // p0 = 0.99; with 8 trials allow at most one failure.
  EXPECT_GE(successes, kTrials - 1) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Ds, ReconcilerSweep,
                         ::testing::Values(2, 5, 17, 64, 200, 1000));

TEST(Reconciler, TwoSidedDifferences) {
  // Elements on both sides (not the paper's B-subset-of-A setup).
  SetPair pair = GenerateTwoSidedPair(3000, 40, 25, 32, 9);
  PbsConfig config;
  auto result = PbsSession::Reconcile(pair.a, pair.b, config, 3, 65);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(Matches(result.difference, pair.truth_diff));
}

TEST(Reconciler, WithRealEstimatorExchange) {
  SetPair pair = GenerateSetPair(3000, 50, 32, 11);
  PbsConfig config;
  Transcript transcript;
  auto result =
      PbsSession::Reconcile(pair.a, pair.b, config, 5, -1, &transcript);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(Matches(result.difference, pair.truth_diff));
  EXPECT_GT(result.estimator_bytes, 0u);
  // |A| = 3000 -> counters are ceil(log2(6001)) = 13 bits; 128 of them.
  EXPECT_NEAR(result.estimator_bytes, 128 * 13 / 8 + 5, 8);
  EXPECT_EQ(transcript.BytesInRound(0), result.estimator_bytes);
}

TEST(Reconciler, UnderestimatedDStillCorrectWhenItSucceeds) {
  // Plan for 10 but the real difference is 60: BCH failures and splits
  // must either finish correctly or report failure -- never lie.
  SetPair pair = GenerateSetPair(4000, 60, 32, 13);
  PbsConfig config;
  config.max_rounds = 6;
  auto result = PbsSession::Reconcile(pair.a, pair.b, config, 17, 10);
  if (result.success) {
    EXPECT_TRUE(Matches(result.difference, pair.truth_diff));
  }
}

TEST(Reconciler, GrossOverestimateStillWorks) {
  SetPair pair = GenerateSetPair(3000, 10, 32, 15);
  PbsConfig config;
  auto result = PbsSession::Reconcile(pair.a, pair.b, config, 19, 500);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(Matches(result.difference, pair.truth_diff));
}

TEST(Reconciler, RoundCapReportsFailureHonestly) {
  // One round with an underestimate is typically not enough; the result
  // must then be marked unsuccessful.
  int failures = 0;
  for (int trial = 0; trial < 5; ++trial) {
    SetPair pair = GenerateSetPair(4000, 100, 32, 21 + trial);
    PbsConfig config;
    config.max_rounds = 1;
    auto result = PbsSession::Reconcile(pair.a, pair.b, config, trial, 20);
    if (!result.success) ++failures;
  }
  EXPECT_GE(failures, 4);
}

TEST(Reconciler, TranscriptMatchesReportedBytes) {
  SetPair pair = GenerateSetPair(3000, 30, 32, 23);
  PbsConfig config;
  Transcript transcript;
  auto result =
      PbsSession::Reconcile(pair.a, pair.b, config, 29, 30, &transcript);
  EXPECT_EQ(transcript.total_bytes(), result.data_bytes);
  EXPECT_EQ(transcript.max_round(), result.rounds);
}

TEST(Reconciler, CommunicationNearTwiceMinimum) {
  // Headline claim: roughly 2x the theoretical minimum d log|U|.
  const int d = 500;
  SetPair pair = GenerateSetPair(50000, d, 32, 31);
  PbsConfig config;
  auto result = PbsSession::Reconcile(pair.a, pair.b, config, 37, d);
  ASSERT_TRUE(result.success);
  const double minimum = d * 4.0;  // d * 32 bits.
  const double ratio = static_cast<double>(result.data_bytes) / minimum;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 3.2);  // Paper reports 2.13 - 2.87.
}

TEST(Reconciler, DifferenceElementsNeverContainZero) {
  SetPair pair = GenerateSetPair(2000, 25, 32, 41);
  PbsConfig config;
  auto result = PbsSession::Reconcile(pair.a, pair.b, config, 43, 25);
  for (uint64_t e : result.difference) EXPECT_NE(e, 0u);
}

TEST(Reconciler, PlanExposedInResult) {
  SetPair pair = GenerateSetPair(2000, 100, 32, 47);
  PbsConfig config;
  auto result = PbsSession::Reconcile(pair.a, pair.b, config, 53, 100);
  EXPECT_EQ(result.plan.params.g, 20);
  EXPECT_GE(result.plan.params.n, 63);
}

}  // namespace
}  // namespace pbs
