// Conformance suite for the SetReconciler interface and SchemeRegistry:
// every registered scheme, iterated by name, must recover the exact
// difference over the sim/workload shapes with sane byte/round accounting,
// and the adapters must produce results identical to the pre-refactor
// direct calls they wrap.

#include "pbs/core/set_reconciler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "pbs/baselines/ddigest.h"
#include "pbs/baselines/graphene.h"
#include "pbs/baselines/pinsketch.h"
#include "pbs/baselines/pinsketch_wp.h"
#include "pbs/core/reconciler.h"
#include "pbs/sim/workload.h"

namespace pbs {
namespace {

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SchemeRegistry, AllBuiltinsRegistered) {
  const auto names = SchemeRegistry::Instance().Names();
  for (const char* expected :
       {"pbs", "pinsketch", "pinsketch-wp", "ddigest", "graphene"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
    EXPECT_TRUE(SchemeRegistry::Instance().Contains(expected));
  }
}

TEST(SchemeRegistry, UnknownNameYieldsNull) {
  EXPECT_EQ(SchemeRegistry::Instance().Create("nope", SchemeOptions{}),
            nullptr);
  EXPECT_FALSE(SchemeRegistry::Instance().Contains("nope"));
  EXPECT_EQ(SchemeRegistry::Instance().DisplayName("nope"), "");
}

TEST(SchemeRegistry, DuplicateRegistrationRejected) {
  auto& registry = SchemeRegistry::Instance();
  EXPECT_FALSE(registry.Register("pbs", "Imposter", nullptr));
  EXPECT_EQ(registry.DisplayName("pbs"), "PBS");
}

TEST(SchemeRegistry, SelfDescription) {
  const SchemeOptions options;
  auto& registry = SchemeRegistry::Instance();
  for (const std::string& name : registry.Names()) {
    const auto scheme = registry.Create(name, options);
    ASSERT_NE(scheme, nullptr) << name;
    EXPECT_EQ(scheme->name(), name);
    EXPECT_EQ(scheme->display_name(), registry.DisplayName(name)) << name;
    EXPECT_TRUE(scheme->needs_estimate()) << name;
  }
  EXPECT_TRUE(registry.Create("pbs", options)->supports_rounds());
  EXPECT_TRUE(registry.Create("pinsketch-wp", options)->supports_rounds());
  EXPECT_FALSE(registry.Create("pinsketch", options)->supports_rounds());
}

// Every registered scheme must exactly recover the difference on the
// workload generator's shapes (subset divergence and two-sided divergence)
// when handed the exact d, and must report non-zero communication.
class SchemeConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(SchemeConformance, ExactRecoveryOnWorkloadShapes) {
  const std::string name = GetParam();
  const auto scheme =
      SchemeRegistry::Instance().Create(name, SchemeOptions{});
  ASSERT_NE(scheme, nullptr);

  const SetPair shapes[] = {
      GenerateSetPair(2000, 25, 32, 0xC0F1),
      GenerateTwoSidedPair(1500, 15, 12, 32, 0xC0F2),
  };
  int shape = 0;
  for (const SetPair& pair : shapes) {
    SCOPED_TRACE(name + " shape " + std::to_string(shape++));
    const double d_hat = static_cast<double>(pair.truth_diff.size());
    const ReconcileOutcome r =
        scheme->Reconcile(pair.a, pair.b, d_hat, 0x5EED);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(Sorted(r.difference), Sorted(pair.truth_diff));
    EXPECT_GT(r.data_bytes, 0u);
    EXPECT_GE(r.rounds, 1);
    EXPECT_GE(r.encode_seconds, 0.0);
    EXPECT_GE(r.decode_seconds, 0.0);
    EXPECT_FALSE(r.params_summary.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeConformance,
    ::testing::ValuesIn(SchemeRegistry::Instance().Names()),
    [](const auto& info) {
      std::string n = info.param;
      for (char& c : n) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

// The adapters must be byte-, round- and element-identical to the direct
// calls the experiment runner made before the refactor, for the same
// (d_hat, seed) inputs.
TEST(SchemeAdapterParity, MatchesDirectCalls) {
  const SetPair pair = GenerateSetPair(3000, 40, 32, 0xAB1DE);
  const double d_hat = 43.7;  // Typical noisy ToW output.
  const uint64_t seed = 0x9A17;
  const SchemeOptions options;
  const PbsConfig& base = options.pbs;
  const int d_raw = std::max(0, static_cast<int>(std::llround(d_hat)));
  const int d_inflated = InflateEstimate(d_hat, base.gamma);
  auto& registry = SchemeRegistry::Instance();

  {
    PbsConfig cfg = base;
    cfg.sig_bits = options.sig_bits;
    const PbsResult direct =
        PbsSession::Reconcile(pair.a, pair.b, cfg, seed, d_inflated, nullptr);
    const ReconcileOutcome via =
        registry.Create("pbs", options)->Reconcile(pair.a, pair.b, d_hat,
                                                   seed);
    EXPECT_EQ(via.success, direct.success);
    EXPECT_EQ(via.data_bytes, direct.data_bytes);
    EXPECT_EQ(via.rounds, direct.rounds);
    EXPECT_EQ(Sorted(via.difference), Sorted(direct.difference));
  }
  {
    const int t = std::max(1, d_inflated);
    const BaselineOutcome direct =
        PinSketchReconcile(pair.a, pair.b, t, options.sig_bits, seed);
    const ReconcileOutcome via = registry.Create("pinsketch", options)
                                     ->Reconcile(pair.a, pair.b, d_hat, seed);
    EXPECT_EQ(via.success, direct.success);
    EXPECT_EQ(via.data_bytes, direct.data_bytes);
    EXPECT_EQ(via.rounds, direct.rounds);
    EXPECT_EQ(Sorted(via.difference), Sorted(direct.difference));
  }
  {
    const BaselineOutcome direct = DDigestReconcile(
        pair.a, pair.b, std::max(d_raw, 1), options.sig_bits, seed);
    const ReconcileOutcome via = registry.Create("ddigest", options)
                                     ->Reconcile(pair.a, pair.b, d_hat, seed);
    EXPECT_EQ(via.success, direct.success);
    EXPECT_EQ(via.data_bytes, direct.data_bytes);
    EXPECT_EQ(via.rounds, direct.rounds);
    EXPECT_EQ(Sorted(via.difference), Sorted(direct.difference));
  }
  {
    const BaselineOutcome direct = GrapheneReconcile(
        pair.a, pair.b, std::max(d_inflated, 1), options.sig_bits, seed);
    const ReconcileOutcome via = registry.Create("graphene", options)
                                     ->Reconcile(pair.a, pair.b, d_hat, seed);
    EXPECT_EQ(via.success, direct.success);
    EXPECT_EQ(via.data_bytes, direct.data_bytes);
    EXPECT_EQ(via.rounds, direct.rounds);
    EXPECT_EQ(Sorted(via.difference), Sorted(direct.difference));
  }
  {
    PbsConfig cfg = base;
    cfg.sig_bits = options.sig_bits;
    const PbsPlan plan = PlanFor(cfg, d_inflated);
    const BaselineOutcome direct = PinSketchWpReconcile(
        pair.a, pair.b, d_inflated, cfg.delta, plan.params.t,
        options.sig_bits, cfg.max_rounds, seed, options.report_sig_bits);
    const ReconcileOutcome via = registry.Create("pinsketch-wp", options)
                                     ->Reconcile(pair.a, pair.b, d_hat, seed);
    EXPECT_EQ(via.success, direct.success);
    EXPECT_EQ(via.data_bytes, direct.data_bytes);
    EXPECT_EQ(via.rounds, direct.rounds);
    EXPECT_EQ(Sorted(via.difference), Sorted(direct.difference));
  }
}

// PbsConfig::decode_threads is a local performance knob: for any thread
// count the recovered difference, byte accounting, and round trajectory
// must be identical to the serial run (the per-group parallel decode
// stages results per unit and serializes them in canonical order). This
// is the single- vs multi-threaded outcome-parity pin of the per-group
// pool -- and, run under TSan (CI), its race detector.
TEST(SchemeAdapterParity, PbsDecodeThreadsDoesNotChangeOutcome) {
  // Two shapes: subset difference and two-sided difference (the general
  // recovery path with elements on both sides).
  const SetPair shapes[] = {GenerateSetPair(3000, 40, 32, 0x7EAD),
                            GenerateTwoSidedPair(2000, 25, 35, 32, 0x51DE)};
  auto& registry = SchemeRegistry::Instance();
  for (const SetPair& pair : shapes) {
    const double d_hat = static_cast<double>(pair.truth_diff.size()) + 1.3;
    const uint64_t seed = 0xDEC0DE;
    SchemeOptions serial;
    serial.pbs.decode_threads = 1;
    const ReconcileOutcome reference =
        registry.Create("pbs", serial)->Reconcile(pair.a, pair.b, d_hat,
                                                  seed);
    ASSERT_TRUE(reference.success);
    EXPECT_EQ(Sorted(reference.difference), Sorted(pair.truth_diff));
    for (int threads : {2, 4, 0}) {  // 0 = one worker per hardware thread.
      SchemeOptions mt = serial;
      mt.pbs.decode_threads = threads;
      const ReconcileOutcome parallel =
          registry.Create("pbs", mt)->Reconcile(pair.a, pair.b, d_hat, seed);
      EXPECT_EQ(parallel.success, reference.success) << threads;
      EXPECT_EQ(parallel.data_bytes, reference.data_bytes) << threads;
      EXPECT_EQ(parallel.rounds, reference.rounds) << threads;
      EXPECT_EQ(Sorted(parallel.difference), Sorted(reference.difference))
          << threads;
    }
  }
}

// Appendix J.3 accounting through the interface: wide-signature reporting
// must add (report_sig_bits - sig_bits)/8 bytes per signature-width field
// to PBS, exactly as the runner used to.
TEST(SchemeAdapterParity, WideSignatureAccounting) {
  const SetPair pair = GenerateSetPair(2000, 30, 32, 0xF00D);
  const double d_hat = static_cast<double>(pair.truth_diff.size());
  const uint64_t seed = 0xBEEF;

  SchemeOptions narrow;
  SchemeOptions wide = narrow;
  wide.report_sig_bits = 256;
  auto& registry = SchemeRegistry::Instance();

  const auto narrow_out =
      registry.Create("pbs", narrow)->Reconcile(pair.a, pair.b, d_hat, seed);
  const auto wide_out =
      registry.Create("pbs", wide)->Reconcile(pair.a, pair.b, d_hat, seed);
  ASSERT_TRUE(narrow_out.success);
  ASSERT_TRUE(wide_out.success);
  // Same protocol run, strictly more accounted bytes.
  EXPECT_EQ(Sorted(wide_out.difference), Sorted(narrow_out.difference));
  EXPECT_GT(wide_out.data_bytes, narrow_out.data_bytes);
  const size_t extra = wide_out.data_bytes - narrow_out.data_bytes;
  // At least the difference's XOR sums must have been widened.
  EXPECT_GE(extra, (256 - 32) / 8 * narrow_out.difference.size());
}

}  // namespace
}  // namespace pbs
