// MutableElementStore: incremental sketch maintenance vs the from-scratch
// oracle, mutation rejection rules, and snapshot isolation.
//
// The load-bearing guarantee is differential: after ANY seeded sequence of
// insert/delete batches — including delete-then-reinsert and duplicate
// inserts — the incrementally maintained layout (parity bitmaps, odd power
// sums, group checksums) must be bit-identical to RebuildLayout(), which
// rebuilds the same structures from the current element set from scratch.
// On top of that: snapshots are immutable epochs, so a session that pinned
// one keeps reconciling correctly against it while a writer churns the
// store through a thousand further mutations.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "pbs/common/rng.h"
#include "pbs/core/element_store.h"
#include "pbs/core/session_engine.h"
#include "pbs/sim/workload.h"

namespace pbs {
namespace {

// Distinct plan shapes: d_used drives (g, n, t) through the Section-5.1
// optimizer, delta/rounds shift the per-group failure budget, sig_bits
// moves the checksum modulus. Together these cover small/large groups,
// narrow/wide bins, and non-default signature widths.
struct LayoutCase {
  int delta;
  int target_rounds;
  int d_used;
  int sig_bits;
};

const LayoutCase kLayoutCases[] = {
    {5, 3, 10, 32},  {5, 3, 100, 32},   {3, 2, 400, 32},
    {5, 3, 60, 24},  {7, 4, 1200, 48},
};

PbsConfig ConfigFor(const LayoutCase& c) {
  PbsConfig config;
  config.delta = c.delta;
  config.target_rounds = c.target_rounds;
  config.max_rounds = c.target_rounds + 2;
  config.sig_bits = c.sig_bits;
  return config;
}

void ExpectLayoutsIdentical(const PbsStoreLayout& incremental,
                            const PbsStoreLayout& rebuilt) {
  ASSERT_EQ(incremental.plan.params.g, rebuilt.plan.params.g);
  ASSERT_EQ(incremental.plan.params.n, rebuilt.plan.params.n);
  ASSERT_EQ(incremental.plan.params.m, rebuilt.plan.params.m);
  ASSERT_EQ(incremental.plan.params.t, rebuilt.plan.params.t);
  ASSERT_EQ(incremental.bitmaps.size(), rebuilt.bitmaps.size());
  for (size_t i = 0; i < incremental.bitmaps.size(); ++i) {
    EXPECT_EQ(incremental.bitmaps[i].xor_sum, rebuilt.bitmaps[i].xor_sum)
        << "group " << i << " xor sums diverged";
    EXPECT_EQ(incremental.bitmaps[i].parity, rebuilt.bitmaps[i].parity)
        << "group " << i << " parity bits diverged";
  }
  EXPECT_EQ(incremental.syndromes, rebuilt.syndromes)
      << "incremental odd power sums diverged from the rebuild";
  EXPECT_EQ(incremental.checksums, rebuilt.checksums)
      << "incremental group checksums diverged from the rebuild";
}

uint64_t RandomSig(Xoshiro256* rng, int sig_bits) {
  const uint64_t mask = (sig_bits >= 64) ? ~uint64_t{0}
                                         : ((uint64_t{1} << sig_bits) - 1);
  while (true) {
    const uint64_t v = rng->Next() & mask;
    if (v != 0) return v;
  }
}

// Seeded random churn: mixed batches with fresh inserts, duplicate inserts
// (must be rejected), deletes of live elements, deletes of absent elements
// (must be rejected), and reinserts of recently deleted values. After each
// batch the incremental layout must equal the from-scratch rebuild.
TEST(ElementStore, IncrementalMatchesRebuildUnderChurn) {
  for (const LayoutCase& layout_case : kLayoutCases) {
    SCOPED_TRACE(testing::Message()
                 << "delta=" << layout_case.delta
                 << " r=" << layout_case.target_rounds
                 << " d_used=" << layout_case.d_used
                 << " sig_bits=" << layout_case.sig_bits);
    Xoshiro256 rng(0xD1FF ^ static_cast<uint64_t>(layout_case.d_used));

    std::vector<uint64_t> live;
    std::unordered_set<uint64_t> live_set;
    for (int i = 0; i < 1200; ++i) {
      const uint64_t v = RandomSig(&rng, layout_case.sig_bits);
      if (live_set.insert(v).second) live.push_back(v);
    }
    MutableElementStore store(live);
    std::string error;
    ASSERT_TRUE(store.ConfigureLayout(ConfigFor(layout_case), 0xC11,
                                      layout_case.d_used, &error))
        << error;

    // Values deleted in PRIOR batches: reinsert fodder. Same-batch
    // reinserts would be rejected (the store applies a batch's inserts
    // before its deletes), so deletions only graduate to the graveyard
    // after their batch applies.
    std::vector<uint64_t> graveyard;
    for (int batch_index = 0; batch_index < 24; ++batch_index) {
      UpdateBatch batch;
      uint32_t expect_inserted = 0, expect_deleted = 0;
      uint32_t expect_rej_ins = 0, expect_rej_del = 0;
      std::unordered_set<uint64_t> pending_inserts;
      std::unordered_set<uint64_t> absent_probes;  // kind==2 targets.
      std::vector<uint64_t> deleted_this_batch;
      for (int i = 0; i < 20; ++i) {
        const uint64_t kind = rng.NextBounded(5);
        if (kind == 0 && !live.empty()) {
          // Duplicate insert: already live, must be rejected.
          batch.inserts.push_back(live[rng.NextBounded(live.size())]);
          ++expect_rej_ins;
        } else if (kind == 1 && !graveyard.empty()) {
          // Delete-then-reinsert.
          const uint64_t v = graveyard.back();
          graveyard.pop_back();
          if (live_set.count(v) == 0 && pending_inserts.insert(v).second) {
            batch.inserts.push_back(v);
            ++expect_inserted;
          }
        } else if (kind == 2) {
          // Delete an absent value: must be rejected. (Also absent from
          // this batch's inserts, which the store applies first.)
          uint64_t v = RandomSig(&rng, layout_case.sig_bits);
          while (live_set.count(v) != 0 || pending_inserts.count(v) != 0) {
            v = RandomSig(&rng, layout_case.sig_bits);
          }
          absent_probes.insert(v);
          batch.deletes.push_back(v);
          ++expect_rej_del;
        } else if (kind == 3 && !live.empty()) {
          const size_t j = rng.NextBounded(live.size());
          const uint64_t v = live[j];
          live[j] = live.back();
          live.pop_back();
          live_set.erase(v);
          deleted_this_batch.push_back(v);
          batch.deletes.push_back(v);
          ++expect_deleted;
        } else {
          uint64_t v = RandomSig(&rng, layout_case.sig_bits);
          while (live_set.count(v) != 0 || pending_inserts.count(v) != 0 ||
                 absent_probes.count(v) != 0) {
            v = RandomSig(&rng, layout_case.sig_bits);
          }
          pending_inserts.insert(v);
          batch.inserts.push_back(v);
          ++expect_inserted;
        }
      }
      for (uint64_t v : pending_inserts) {
        live.push_back(v);
        live_set.insert(v);
      }

      const ApplyResult applied = store.Apply(batch);
      graveyard.insert(graveyard.end(), deleted_this_batch.begin(),
                       deleted_this_batch.end());
      EXPECT_EQ(applied.inserted, expect_inserted);
      EXPECT_EQ(applied.deleted, expect_deleted);
      EXPECT_EQ(applied.rejected_inserts, expect_rej_ins);
      EXPECT_EQ(applied.rejected_deletes, expect_rej_del);
      EXPECT_EQ(applied.epoch, store.epoch());
      EXPECT_EQ(store.size(), live.size());

      const auto snapshot = store.snapshot();
      ASSERT_NE(snapshot, nullptr);
      ASSERT_NE(snapshot->layout, nullptr);
      const auto rebuilt = store.RebuildLayout();
      ASSERT_NE(rebuilt, nullptr);
      ExpectLayoutsIdentical(*snapshot->layout, *rebuilt);

      std::vector<uint64_t> published = *snapshot->elements;
      std::vector<uint64_t> expected = live;
      std::sort(published.begin(), published.end());
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(published, expected);
    }
  }
}

TEST(ElementStore, RejectsZeroDuplicatesAndOutOfUniverseValues) {
  MutableElementStore store;
  PbsConfig config;
  config.sig_bits = 32;
  ASSERT_TRUE(store.ConfigureLayout(config, 0xC11, 50));

  EXPECT_FALSE(store.ApplyInsert(0));  // Zero is outside the universe.
  EXPECT_TRUE(store.ApplyInsert(42));
  EXPECT_FALSE(store.ApplyInsert(42));  // Duplicate.
  EXPECT_FALSE(store.ApplyInsert(uint64_t{1} << 40));  // Wider than 32 bits.
  EXPECT_FALSE(store.ApplyDelete(7));  // Absent.
  EXPECT_TRUE(store.ApplyDelete(42));
  EXPECT_TRUE(store.ApplyInsert(42));  // Delete-then-reinsert is fine.
  EXPECT_EQ(store.size(), 1u);

  // The single-element paths do not publish; a batch does.
  const uint64_t epoch_before = store.epoch();
  EXPECT_TRUE(store.ApplyInsert(43));
  EXPECT_EQ(store.epoch(), epoch_before);
  EXPECT_EQ(store.Publish(), epoch_before + 1);
}

TEST(ElementStore, ConfigureLayoutRejectsStoredElementsWiderThanSigBits) {
  MutableElementStore store({uint64_t{1} << 40, 3, 5});
  PbsConfig config;
  config.sig_bits = 32;
  std::string error;
  EXPECT_FALSE(store.ConfigureLayout(config, 0xC11, 50, &error));
  EXPECT_FALSE(error.empty());
}

// Snapshot isolation, end to end: a responder session that pinned an epoch
// keeps reconciling against exactly that epoch's set while a writer churns
// the store through 1000 further mutations (and epochs). The recovered
// difference must match the pinned epoch's ground truth — and be identical
// to a plain non-snapshot session over the same two sets, pinning that the
// snapshot fast path never changes wire behavior.
TEST(ElementStore, PinnedSnapshotReconcilesAcrossThousandMutations) {
  const SetPair pair = GenerateTwoSidedPair(3000, 25, 35, 32, 0x0DD);
  MutableElementStore store(pair.b);
  PbsConfig layout_config;
  layout_config.sig_bits = 32;
  std::string error;
  ASSERT_TRUE(store.ConfigureLayout(
      layout_config, 0xC11,
      InflateEstimate(static_cast<double>(pair.truth_diff.size()),
                      layout_config.gamma),
      &error))
      << error;

  const auto pinned = store.snapshot();
  ASSERT_NE(pinned, nullptr);
  const uint64_t pinned_epoch = pinned->epoch;

  // Churn: 1000 mutations in 50 batches, each publishing a new epoch.
  Xoshiro256 rng(0xC0DE);
  std::vector<uint64_t> live = *pinned->elements;
  for (int batch_index = 0; batch_index < 50; ++batch_index) {
    UpdateBatch batch;
    for (int i = 0; i < 10; ++i) {
      batch.inserts.push_back(RandomSig(&rng, 32));
      const size_t j = rng.NextBounded(live.size());
      batch.deletes.push_back(live[j]);
      live[j] = live.back();
      live.pop_back();
    }
    store.Apply(batch);
  }
  EXPECT_GE(store.epoch(), pinned_epoch + 50);

  SessionConfig config;
  config.scheme_name = "pbs";
  config.seed = 0xC11;
  config.exact_d = static_cast<double>(pair.truth_diff.size());

  // Pinned-snapshot session.
  SessionEngine initiator = SessionEngine::Initiator(config, pair.a);
  SessionEngine responder =
      SessionEngine::Responder(SessionConfig(), pinned, nullptr);
  std::vector<uint8_t> buffer(1 << 16);
  bool progress = true;
  while (progress) {
    progress = false;
    while (initiator.Status() == SessionStatus::kWantWrite) {
      const size_t n = initiator.Poll(buffer.data(), buffer.size());
      responder.Feed(buffer.data(), n);
      progress = true;
    }
    while (responder.Status() == SessionStatus::kWantWrite) {
      const size_t n = responder.Poll(buffer.data(), buffer.size());
      initiator.Feed(buffer.data(), n);
      progress = true;
    }
  }
  const SessionResult snapshot_run = initiator.TakeResult();
  ASSERT_TRUE(snapshot_run.ok) << snapshot_run.error;
  ASSERT_TRUE(snapshot_run.outcome.success);

  std::vector<uint64_t> recovered = snapshot_run.outcome.difference;
  std::vector<uint64_t> truth = pair.truth_diff;
  std::sort(recovered.begin(), recovered.end());
  std::sort(truth.begin(), truth.end());
  EXPECT_EQ(recovered, truth)
      << "pinned snapshot no longer reconciles its own epoch";

  // Byte-for-byte parity with the classic (copying, from-scratch) path.
  const SessionResult plain = [&] {
    SessionEngine init2 = SessionEngine::Initiator(config, pair.a);
    SessionEngine resp2 = SessionEngine::Responder(pair.b);
    bool moving = true;
    while (moving) {
      moving = false;
      while (init2.Status() == SessionStatus::kWantWrite) {
        const size_t n = init2.Poll(buffer.data(), buffer.size());
        resp2.Feed(buffer.data(), n);
        moving = true;
      }
      while (resp2.Status() == SessionStatus::kWantWrite) {
        const size_t n = resp2.Poll(buffer.data(), buffer.size());
        init2.Feed(buffer.data(), n);
        moving = true;
      }
    }
    return init2.TakeResult();
  }();
  ASSERT_TRUE(plain.ok) << plain.error;
  EXPECT_EQ(snapshot_run.outcome.difference, plain.outcome.difference);
  EXPECT_EQ(snapshot_run.outcome.rounds, plain.outcome.rounds);
  EXPECT_EQ(snapshot_run.outcome.wire_bytes, plain.outcome.wire_bytes)
      << "snapshot adoption changed the wire bytes";
  EXPECT_EQ(snapshot_run.outcome.wire_frames, plain.outcome.wire_frames);
}

// Epochs advance by exactly one per publishing operation, and snapshot()
// returns the newest published epoch.
TEST(ElementStore, EpochsAreMonotonicPerPublish) {
  MutableElementStore store({1, 2, 3});
  const uint64_t e0 = store.epoch();
  EXPECT_EQ(store.snapshot()->epoch, e0);
  UpdateBatch batch;
  batch.inserts = {10, 11};
  EXPECT_EQ(store.Apply(batch).epoch, e0 + 1);
  PbsConfig config;
  config.sig_bits = 32;
  ASSERT_TRUE(store.ConfigureLayout(config, 0xC11, 20));
  EXPECT_EQ(store.epoch(), e0 + 2);
  EXPECT_EQ(store.Publish(), e0 + 3);
  EXPECT_EQ(store.snapshot()->epoch, e0 + 3);
}

}  // namespace
}  // namespace pbs
