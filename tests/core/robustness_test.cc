// Adversarial-input robustness: the endpoints must survive corrupted,
// truncated, or garbage protocol messages without crashing, and must never
// turn such input into a false "success".

#include <gtest/gtest.h>

#include <algorithm>

#include "pbs/common/rng.h"
#include "pbs/core/pbs_endpoints.h"
#include "pbs/sim/workload.h"

namespace pbs {
namespace {

std::vector<uint8_t> Corrupt(std::vector<uint8_t> bytes, Xoshiro256* rng) {
  if (bytes.empty()) return bytes;
  const int flips = 1 + static_cast<int>(rng->NextBounded(8));
  for (int i = 0; i < flips; ++i) {
    bytes[rng->NextBounded(bytes.size())] ^=
        static_cast<uint8_t>(1u << rng->NextBounded(8));
  }
  return bytes;
}

class MessageCorruption : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MessageCorruption, CorruptedRoundReplyNeverFalselySucceeds) {
  Xoshiro256 rng(GetParam());
  SetPair pair = GenerateSetPair(1500, 20, 32, GetParam());
  PbsConfig config;
  config.max_rounds = 4;
  PbsAlice alice(pair.a, config, 5);
  PbsBob bob(pair.b, config, 5);
  alice.SetDifferenceEstimate(20);
  bob.SetDifferenceEstimate(20);

  bool finished = false;
  for (int round = 0; round < config.max_rounds && !finished; ++round) {
    auto reply = bob.HandleRoundRequest(alice.MakeRoundRequest());
    finished = alice.HandleRoundReply(Corrupt(std::move(reply), &rng));
  }
  if (finished) {
    // Success claims survive corruption only if the recovered difference is
    // still checksum-consistent; it must then actually be correct.
    auto diff = alice.Difference();
    std::sort(diff.begin(), diff.end());
    std::sort(pair.truth_diff.begin(), pair.truth_diff.end());
    EXPECT_EQ(diff, pair.truth_diff);
  }
}

TEST_P(MessageCorruption, CorruptedRequestDoesNotCrashBob) {
  Xoshiro256 rng(GetParam() ^ 0xB0B);
  SetPair pair = GenerateSetPair(1500, 20, 32, GetParam());
  PbsConfig config;
  PbsAlice alice(pair.a, config, 7);
  PbsBob bob(pair.b, config, 7);
  alice.SetDifferenceEstimate(20);
  bob.SetDifferenceEstimate(20);
  auto request = Corrupt(alice.MakeRoundRequest(), &rng);
  auto reply = bob.HandleRoundRequest(request);  // Must not crash.
  (void)reply;
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageCorruption,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Robustness, TruncatedReplyHandled) {
  SetPair pair = GenerateSetPair(1500, 20, 32, 77);
  PbsConfig config;
  PbsAlice alice(pair.a, config, 9);
  PbsBob bob(pair.b, config, 9);
  alice.SetDifferenceEstimate(20);
  bob.SetDifferenceEstimate(20);
  auto reply = bob.HandleRoundRequest(alice.MakeRoundRequest());
  reply.resize(reply.size() / 2);
  alice.HandleRoundReply(reply);  // Must not crash.
  SUCCEED();
}

TEST(Robustness, EmptyMessagesHandled) {
  SetPair pair = GenerateSetPair(500, 5, 32, 78);
  PbsConfig config;
  PbsAlice alice(pair.a, config, 11);
  PbsBob bob(pair.b, config, 11);
  alice.SetDifferenceEstimate(5);
  bob.SetDifferenceEstimate(5);
  alice.MakeRoundRequest();
  alice.HandleRoundReply({});           // Empty reply.
  bob.HandleRoundRequest({});           // Empty request.
  SUCCEED();
}

TEST(Robustness, GarbageEstimateRequestHandled) {
  SetPair pair = GenerateSetPair(500, 5, 32, 79);
  PbsConfig config;
  PbsBob bob(pair.b, config, 13);
  Xoshiro256 rng(80);
  std::vector<uint8_t> garbage(64);
  for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
  auto reply = bob.HandleEstimateRequest(garbage);  // Must not crash.
  EXPECT_EQ(reply.size(), 4u);
}

TEST(Robustness, ZeroLengthSetsReconcile) {
  PbsConfig config;
  PbsAlice alice({}, config, 15);
  PbsBob bob({}, config, 15);
  alice.SetDifferenceEstimate(0);
  bob.SetDifferenceEstimate(0);
  const bool finished =
      alice.HandleRoundReply(bob.HandleRoundRequest(alice.MakeRoundRequest()));
  EXPECT_TRUE(finished);
  EXPECT_TRUE(alice.Difference().empty());
}

TEST(Robustness, OneSidedEmptySet) {
  SetPair pair = GenerateSetPair(60, 60, 32, 81);  // B is empty.
  ASSERT_TRUE(pair.b.empty());
  PbsConfig config;
  config.max_rounds = 5;
  PbsAlice alice(pair.a, config, 17);
  PbsBob bob(pair.b, config, 17);
  alice.SetDifferenceEstimate(60);
  bob.SetDifferenceEstimate(60);
  bool finished = false;
  for (int r = 0; r < config.max_rounds && !finished; ++r) {
    finished = alice.HandleRoundReply(
        bob.HandleRoundRequest(alice.MakeRoundRequest()));
  }
  ASSERT_TRUE(finished);
  auto diff = alice.Difference();
  std::sort(diff.begin(), diff.end());
  std::sort(pair.truth_diff.begin(), pair.truth_diff.end());
  EXPECT_EQ(diff, pair.truth_diff);
}

}  // namespace
}  // namespace pbs
