// Framed session layer: frame codec robustness and end-to-end parity.
//
// Three layers of guarantees, matching docs/WIRE_FORMAT.md:
//  1. Codec: EncodeFrame/DecodeFrame round-trip arbitrary frames, and every
//     truncation or single-byte corruption is rejected, never mis-decoded.
//  2. Transports: loopback and TCP move frames intact.
//  3. Sessions: for EVERY scheme in the registry, a loopback session
//     recovers a difference identical to the in-memory Reconcile() call
//     with the same estimate and seed — the wire protocol is a faithful
//     split of the algorithm, not a re-implementation.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "pbs/common/bitio.h"
#include "pbs/common/rng.h"
#include "pbs/core/element_store.h"
#include "pbs/core/messages.h"
#include "pbs/core/session_engine.h"
#include "pbs/core/set_reconciler.h"
#include "pbs/core/transport.h"
#include "pbs/core/wire_session.h"
#include "pbs/sim/workload.h"

namespace pbs {
namespace {

using wire::FrameStatus;
using wire::FrameType;
using wire::WireFrame;

WireFrame RandomFrame(Xoshiro256* rng) {
  WireFrame frame;
  frame.type = static_cast<FrameType>(1 + rng->NextBounded(10));
  frame.scheme = static_cast<uint8_t>(rng->NextBounded(6));
  frame.round = static_cast<uint32_t>(rng->Next());
  frame.payload.resize(rng->NextBounded(512));
  for (auto& byte : frame.payload) {
    byte = static_cast<uint8_t>(rng->Next());
  }
  return frame;
}

TEST(WireFrameCodec, FuzzRoundTrip) {
  Xoshiro256 rng(0xF00D);
  for (int i = 0; i < 500; ++i) {
    const WireFrame frame = RandomFrame(&rng);
    const std::vector<uint8_t> encoded = wire::EncodeFrame(frame);
    ASSERT_EQ(encoded.size(), wire::kFrameHeaderSize + frame.payload.size());
    WireFrame decoded;
    size_t consumed = 0;
    ASSERT_EQ(wire::DecodeFrame(encoded.data(), encoded.size(), &decoded,
                                &consumed),
              FrameStatus::kOk);
    EXPECT_EQ(consumed, encoded.size());
    EXPECT_EQ(decoded.version, frame.version);
    EXPECT_EQ(decoded.type, frame.type);
    EXPECT_EQ(decoded.scheme, frame.scheme);
    EXPECT_EQ(decoded.round, frame.round);
    EXPECT_EQ(decoded.payload, frame.payload);
  }
}

TEST(WireFrameCodec, EveryTruncationIsDetected) {
  Xoshiro256 rng(0xBEEF);
  WireFrame frame = RandomFrame(&rng);
  frame.payload.resize(37);
  const std::vector<uint8_t> encoded = wire::EncodeFrame(frame);
  for (size_t len = 0; len < encoded.size(); ++len) {
    WireFrame decoded;
    size_t consumed = 0;
    EXPECT_EQ(wire::DecodeFrame(encoded.data(), len, &decoded, &consumed),
              FrameStatus::kTruncated)
        << "prefix length " << len;
  }
}

TEST(WireFrameCodec, EverySingleByteCorruptionIsRejected) {
  Xoshiro256 rng(0xCAFE);
  WireFrame frame = RandomFrame(&rng);
  frame.payload.resize(64);
  const std::vector<uint8_t> encoded = wire::EncodeFrame(frame);
  for (size_t i = 0; i < encoded.size(); ++i) {
    for (uint8_t flip : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::vector<uint8_t> corrupt = encoded;
      corrupt[i] ^= flip;
      WireFrame decoded;
      size_t consumed = 0;
      const FrameStatus status = wire::DecodeFrame(
          corrupt.data(), corrupt.size(), &decoded, &consumed);
      // A flipped length byte can also read as "need more bytes"; any
      // other corruption must be flagged outright. What is never OK is
      // silently decoding.
      EXPECT_NE(status, FrameStatus::kOk) << "byte " << i;
    }
  }
}

TEST(WireFrameCodec, AlienVersionRejected) {
  WireFrame frame;
  frame.version = wire::kWireVersion + 1;
  frame.payload = {1, 2, 3};
  const std::vector<uint8_t> encoded = wire::EncodeFrame(frame);
  WireFrame decoded;
  size_t consumed = 0;
  EXPECT_EQ(wire::DecodeFrame(encoded.data(), encoded.size(), &decoded,
                              &consumed),
            FrameStatus::kBadVersion);
}

TEST(LoopbackTransport, MovesBytesBothWays) {
  auto pair = MakeLoopbackTransportPair();
  const uint8_t ping[3] = {1, 2, 3};
  ASSERT_TRUE(pair.first->Send(ping, 3));
  uint8_t buf[3] = {0, 0, 0};
  ASSERT_TRUE(pair.second->Recv(buf, 3));
  EXPECT_EQ(buf[2], 3);
  ASSERT_TRUE(pair.second->Send(buf, 3));
  ASSERT_TRUE(pair.first->Recv(buf, 3));
  // Dropping one end turns further reads on the other into EOF.
  pair.first.reset();
  EXPECT_FALSE(pair.second->Recv(buf, 1));
}

// ------------------------------------------------------------- sessions --

SchemeOptions TestOptions() {
  SchemeOptions options;
  options.pbs.max_rounds = 8;
  options.pbs.target_rounds = 3;
  return options;
}

// Registry-wide parity: the loopback session must recover the *identical*
// difference vector (same elements, same order) as the in-memory call.
TEST(WireSession, LoopbackMatchesInMemoryReconcileForEveryScheme) {
  const SetPair pair = GenerateTwoSidedPair(4000, 40, 60, 32, 0xA11CE);
  const double d_hat = static_cast<double>(pair.truth_diff.size());
  const uint64_t seed = 0x5EED;

  for (const std::string& name : SchemeRegistry::Instance().Names()) {
    SCOPED_TRACE(name);
    SchemeOptions options = TestOptions();
    const auto reconciler = SchemeRegistry::Instance().Create(name, options);
    ASSERT_NE(reconciler, nullptr);
    const ReconcileOutcome direct =
        reconciler->Reconcile(pair.a, pair.b, d_hat, seed);

    SessionConfig config;
    config.scheme_name = name;
    config.options = options;
    config.seed = seed;
    config.exact_d = d_hat;
    const SessionResult session = RunLoopbackSession(config, pair.a, pair.b);

    ASSERT_TRUE(session.ok) << session.error;
    EXPECT_EQ(session.outcome.success, direct.success);
    EXPECT_EQ(session.outcome.rounds, direct.rounds);
    EXPECT_EQ(session.outcome.difference, direct.difference)
        << "wire session and in-memory Reconcile diverged";
    EXPECT_GT(session.outcome.wire_bytes,
              session.outcome.data_bytes)  // Frames add overhead.
        << "wire accounting missing";
    EXPECT_GE(session.outcome.wire_frames, 5);
  }
}

// With no exact_d, the session runs its ToW estimate exchange; the
// recovered difference must still be exactly the truth.
TEST(WireSession, EstimatePhaseEndToEnd) {
  const SetPair pair = GenerateTwoSidedPair(3000, 30, 50, 32, 0xB0B);
  for (const std::string& name : SchemeRegistry::Instance().Names()) {
    SCOPED_TRACE(name);
    SessionConfig config;
    config.scheme_name = name;
    config.options = TestOptions();
    config.seed = 0x7357;
    config.estimate_seed = 0xE571;
    const SessionResult session = RunLoopbackSession(config, pair.a, pair.b);
    ASSERT_TRUE(session.ok) << session.error;
    EXPECT_GT(session.d_hat, 0.0);
    EXPECT_GT(session.outcome.estimator_bytes, 0u);
    // The wire estimate phase must hand the engines the same d-hat an
    // in-memory caller would have used — so session and direct call agree
    // even when a scheme (legitimately, probabilistically) fails to decode
    // under an unlucky estimate.
    const auto reconciler =
        SchemeRegistry::Instance().Create(name, config.options);
    const ReconcileOutcome direct =
        reconciler->Reconcile(pair.a, pair.b, session.d_hat, config.seed);
    EXPECT_EQ(session.outcome.success, direct.success);
    EXPECT_EQ(session.outcome.difference, direct.difference);
    if (session.outcome.success) {
      std::vector<uint64_t> recovered = session.outcome.difference;
      std::vector<uint64_t> truth = pair.truth_diff;
      std::sort(recovered.begin(), recovered.end());
      std::sort(truth.begin(), truth.end());
      EXPECT_EQ(recovered, truth);
    }
  }
}

TEST(WireSession, UnknownSchemeIsRejectedByResponder) {
  // Craft a HELLO for a scheme the registry does not know by running the
  // initiator against a live responder: the initiator fails fast locally,
  // so instead register nothing and check the error text path via a
  // direct config with a bogus name.
  SessionConfig config;
  config.scheme_name = "no-such-scheme";
  const SessionResult result =
      RunLoopbackSession(config, {1, 2, 3}, {1, 2, 4});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no-such-scheme"), std::string::npos);
}

TEST(WireSession, OutOfRangeConfigFailsFastWithoutTruncation) {
  // delta = 300 does not fit the HELLO's u8; the session must refuse to
  // send a silently truncated config.
  SessionConfig config;
  config.options.pbs.delta = 300;
  const SessionResult result = RunLoopbackSession(config, {1, 2}, {1, 3});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("delta"), std::string::npos) << result.error;
}

TEST(WireSession, RespondersRejectOversizedSizingFields) {
  // A 4-byte request claiming a huge capacity must be rejected before any
  // allocation — these fields arrive from the network.
  const std::vector<uint64_t> set_b = {1, 2, 3};
  BitWriter w;
  w.WriteBits(0xFFFFFFFFu, 32);
  const std::vector<uint8_t> huge = w.TakeBytes();
  for (const std::string& name :
       {std::string("pinsketch"), std::string("ddigest"),
        std::string("graphene"), std::string("pinsketch-wp")}) {
    SCOPED_TRACE(name);
    const auto scheme =
        SchemeRegistry::Instance().Create(name, SchemeOptions());
    auto responder = scheme->CreateResponder(set_b, 1.0, 7);
    ASSERT_NE(responder, nullptr);
    std::vector<uint8_t> reply;
    std::vector<uint8_t> request = huge;
    if (name == "pinsketch-wp") {
      // Round-1 header is (g, t); a claimed g*t far beyond the request's
      // actual sketch bytes must be rejected too.
      BitWriter wp;
      wp.WriteBits(0x00FFFFFFu, 32);
      wp.WriteBits(0x00FFFFFFu, 32);
      request = wp.TakeBytes();
    }
    EXPECT_FALSE(responder->HandleRequest(request, &reply));
  }
}

// ------------------------------------------------------- UPDATE frames --

std::vector<uint8_t> UpdatePayload(uint64_t claim_inserts,
                                   uint64_t claim_deletes,
                                   const std::vector<uint64_t>& values) {
  BitWriter w;
  w.WriteVarint(claim_inserts);
  w.WriteVarint(claim_deletes);
  for (uint64_t v : values) w.WriteBits(v, 64);
  return w.TakeBytes();
}

std::vector<uint8_t> FrameBytes(FrameType type, uint32_t round,
                                const std::vector<uint8_t>& payload) {
  WireFrame frame;
  frame.type = type;
  frame.round = round;
  frame.payload = payload;
  return wire::EncodeFrame(frame);
}

// Feeds raw bytes, drains the responder's reply frames, and returns its
// terminal/ongoing status alongside any queued error text.
SessionStatus FeedAndDrain(SessionEngine* engine,
                           const std::vector<uint8_t>& bytes) {
  engine->Feed(bytes.data(), bytes.size());
  uint8_t sink[4096];
  while (engine->Status() == SessionStatus::kWantWrite) {
    engine->Poll(sink, sizeof(sink));
  }
  return engine->Status();
}

std::shared_ptr<MutableElementStore> StoreWithLayout(
    std::vector<uint64_t> elements) {
  auto store = std::make_shared<MutableElementStore>(std::move(elements));
  PbsConfig config;
  config.sig_bits = 32;
  EXPECT_TRUE(store->ConfigureLayout(config, 0xC11, 50));
  return store;
}

SessionEngine MutableResponder(
    const std::shared_ptr<MutableElementStore>& store) {
  return SessionEngine::Responder(SessionConfig(), store->snapshot(), store);
}

TEST(UpdateSession, LoopbackApplyAndAckCounts) {
  auto store = StoreWithLayout({1, 2, 3, 4, 5});
  std::vector<UpdateBatch> batches(2);
  batches[0].inserts = {10, 11, 3};  // 3 is a duplicate: rejected.
  batches[0].deletes = {1, 99};      // 99 absent: rejected.
  batches[1].inserts = {12};
  batches[1].deletes = {10};

  SessionEngine updater = SessionEngine::Updater(batches);
  SessionEngine responder = MutableResponder(store);
  uint8_t chunk[4096];
  bool progress = true;
  while (progress) {
    progress = false;
    while (updater.Status() == SessionStatus::kWantWrite) {
      const size_t n = updater.Poll(chunk, sizeof(chunk));
      responder.Feed(chunk, n);
      progress = true;
    }
    while (responder.Status() == SessionStatus::kWantWrite) {
      const size_t n = responder.Poll(chunk, sizeof(chunk));
      updater.Feed(chunk, n);
      progress = true;
    }
  }
  const SessionResult result = updater.TakeResult();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.outcome.success);
  EXPECT_EQ(result.outcome.rounds, 2);
  EXPECT_EQ(result.scheme, "update");
  EXPECT_NE(result.outcome.params_summary.find("inserted=3"),
            std::string::npos)
      << result.outcome.params_summary;
  EXPECT_NE(result.outcome.params_summary.find("deleted=2"),
            std::string::npos);
  EXPECT_NE(result.outcome.params_summary.find("rejected=2"),
            std::string::npos);
  EXPECT_TRUE(responder.result().ok) << responder.result().error;
  EXPECT_EQ(responder.result().scheme, "update");
  EXPECT_EQ(store->size(), 6u);  // {2,3,4,5,11,12}; insert 10 deleted.
}

// A claimed count larger than the payload's actual values must be
// rejected before anything is applied — a truncated update is all-or-
// nothing, never a silent partial apply.
TEST(UpdateSession, TruncatedUpdateRejectedWithoutPartialApply) {
  auto store = StoreWithLayout({1, 2, 3});
  const uint64_t epoch_before = store->epoch();
  SessionEngine responder = MutableResponder(store);
  // Claims 5 inserts, carries 2.
  const auto payload = UpdatePayload(5, 0, {10, 11});
  EXPECT_EQ(FeedAndDrain(&responder,
                         FrameBytes(FrameType::kUpdate, 1, payload)),
            SessionStatus::kError);
  EXPECT_NE(responder.result().error.find("malformed UPDATE"),
            std::string::npos)
      << responder.result().error;
  EXPECT_EQ(store->size(), 3u) << "truncated update partially applied";
  EXPECT_EQ(store->epoch(), epoch_before);
}

TEST(UpdateSession, TrailingGarbageRejected) {
  auto store = StoreWithLayout({1, 2, 3});
  SessionEngine responder = MutableResponder(store);
  auto payload = UpdatePayload(1, 0, {10});
  payload.resize(payload.size() + 8, 0xAB);  // 8 bytes beyond the counts.
  EXPECT_EQ(FeedAndDrain(&responder,
                         FrameBytes(FrameType::kUpdate, 1, payload)),
            SessionStatus::kError);
  EXPECT_EQ(store->size(), 3u);
}

TEST(UpdateSession, HostileCountsRejectedBeforeAllocation) {
  auto store = StoreWithLayout({1, 2, 3});
  SessionEngine responder = MutableResponder(store);
  // 2^40 claimed inserts in a 20-byte payload.
  const auto payload = UpdatePayload(uint64_t{1} << 40, 0, {10});
  EXPECT_EQ(FeedAndDrain(&responder,
                         FrameBytes(FrameType::kUpdate, 1, payload)),
            SessionStatus::kError);
  EXPECT_EQ(store->size(), 3u);
}

// Seeded fuzz: random byte payloads and random truncations of a valid
// update frame must never crash the responder or mutate the store — every
// malformed variant ends in ERROR (or, for truncated frame envelopes,
// more-bytes-wanted), and the element set stays exactly as seeded.
TEST(UpdateSession, FuzzedUpdatePayloadsNeverCrashOrApply) {
  Xoshiro256 rng(0x0F12);
  auto store = StoreWithLayout({1, 2, 3, 4});
  const auto valid =
      FrameBytes(FrameType::kUpdate, 1, UpdatePayload(2, 1, {10, 11, 3}));
  for (int i = 0; i < 200; ++i) {
    SessionEngine responder = MutableResponder(store);
    std::vector<uint8_t> bytes;
    if (i % 2 == 0) {
      // Random garbage payload under a well-formed envelope.
      std::vector<uint8_t> payload(rng.NextBounded(64));
      for (auto& b : payload) b = static_cast<uint8_t>(rng.Next());
      bytes = FrameBytes(FrameType::kUpdate, 1, payload);
    } else {
      // Truncation of a valid update frame at a random boundary.
      bytes.assign(valid.begin(),
                   valid.begin() + 1 + rng.NextBounded(valid.size() - 1));
    }
    const SessionStatus status = FeedAndDrain(&responder, bytes);
    EXPECT_NE(status, SessionStatus::kDone);
    if (status == SessionStatus::kWantRead) {
      // Envelope still incomplete; EOF must fail it, not settle it.
      responder.FeedEof();
      EXPECT_EQ(responder.Status(), SessionStatus::kError);
    }
  }
  EXPECT_EQ(store->size(), 4u) << "a fuzzed update mutated the store";
}

TEST(UpdateSession, ReadOnlyServerRejectsUpdates) {
  // Classic responder (no store): UPDATE is refused with a diagnostic.
  SessionEngine responder = SessionEngine::Responder({1, 2, 3});
  EXPECT_EQ(FeedAndDrain(&responder,
                         FrameBytes(FrameType::kUpdate, 1,
                                    UpdatePayload(1, 0, {10}))),
            SessionStatus::kError);
  EXPECT_NE(responder.result().error.find("read-only"), std::string::npos)
      << responder.result().error;
}

// Out-of-order: an UPDATE frame arriving inside a reconciliation session
// must be rejected even on a mutable server — sessions are single-purpose.
TEST(UpdateSession, UpdateInsideReconcileSessionRejected) {
  auto store = StoreWithLayout({1, 2, 3});
  SessionEngine responder = MutableResponder(store);
  SessionConfig config;
  config.scheme_name = "pbs";
  config.exact_d = 2.0;
  SessionEngine initiator = SessionEngine::Initiator(config, {1, 2, 9});
  // Deliver the HELLO so the responder enters the reconcile path.
  uint8_t chunk[4096];
  while (initiator.Status() == SessionStatus::kWantWrite) {
    const size_t n = initiator.Poll(chunk, sizeof(chunk));
    responder.Feed(chunk, n);
  }
  ASSERT_NE(responder.Status(), SessionStatus::kError);
  EXPECT_EQ(FeedAndDrain(&responder,
                         FrameBytes(FrameType::kUpdate, 1,
                                    UpdatePayload(1, 0, {10}))),
            SessionStatus::kError);
  EXPECT_NE(responder.result().error.find("unexpected frame"),
            std::string::npos)
      << responder.result().error;
  EXPECT_EQ(store->size(), 3u);
}

// Conversely, reconciliation frames inside an update session are rejected.
TEST(UpdateSession, ReconcileFrameInsideUpdateSessionRejected) {
  auto store = StoreWithLayout({1, 2, 3});
  SessionEngine responder = MutableResponder(store);
  ASSERT_NE(FeedAndDrain(&responder,
                         FrameBytes(FrameType::kUpdate, 1,
                                    UpdatePayload(1, 0, {10}))),
            SessionStatus::kError);
  EXPECT_EQ(FeedAndDrain(&responder,
                         FrameBytes(FrameType::kEstimateRequest, 0, {})),
            SessionStatus::kError);
  EXPECT_NE(responder.result().error.find("unexpected frame"),
            std::string::npos);
}

// Unknown opcodes stay rejected on a mutable server, exactly as on a
// read-only one.
TEST(UpdateSession, UnknownOpcodeRejectedOnMutableServer) {
  auto store = StoreWithLayout({1, 2, 3});
  {
    SessionEngine responder = MutableResponder(store);
    EXPECT_EQ(FeedAndDrain(
                  &responder,
                  FrameBytes(static_cast<FrameType>(12), 0, {1, 2, 3})),
              SessionStatus::kError);
  }
  {
    // Mid-update-session unknown opcode.
    SessionEngine responder = MutableResponder(store);
    ASSERT_NE(FeedAndDrain(&responder,
                           FrameBytes(FrameType::kUpdate, 1,
                                      UpdatePayload(1, 0, {10}))),
              SessionStatus::kError);
    EXPECT_EQ(FeedAndDrain(
                  &responder,
                  FrameBytes(static_cast<FrameType>(12), 1, {1, 2, 3})),
              SessionStatus::kError);
  }
}

// RunUpdateSession over a real transport: the blocking driver speaks the
// same protocol the engines do.
TEST(UpdateSession, BlockingDriverOverLoopbackTransport) {
  auto store = StoreWithLayout({1, 2, 3});
  auto transports = MakeLoopbackTransportPair();
  std::thread server([&transports, &store] {
    SessionEngine responder = MutableResponder(store);
    ByteTransport& transport = *transports.second;
    uint8_t buffer[4096];
    for (;;) {
      switch (responder.Status()) {
        case SessionStatus::kWantWrite: {
          const size_t n = responder.Poll(buffer, sizeof(buffer));
          if (!transport.Send(buffer, n)) return;
          break;
        }
        case SessionStatus::kWantRead: {
          const size_t need =
              std::min(responder.NeededBytes(), sizeof(buffer));
          if (!transport.Recv(buffer, need)) {
            responder.FeedEof();
            break;
          }
          responder.Feed(buffer, need);
          break;
        }
        default:
          return;
      }
    }
  });
  std::vector<UpdateBatch> batches(1);
  batches[0].inserts = {20, 21};
  batches[0].deletes = {1};
  const SessionResult result =
      RunUpdateSession(*transports.first, batches);
  transports.first.reset();
  server.join();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NE(result.outcome.params_summary.find("inserted=2"),
            std::string::npos);
  EXPECT_EQ(store->size(), 4u);
}

TEST(WireSession, TcpEndToEnd) {
  const SetPair pair = GenerateTwoSidedPair(2000, 20, 30, 32, 0x7C9);
  std::string error;
  auto listener = TcpListener::Listen(0, &error);
  ASSERT_NE(listener, nullptr) << error;

  SessionResult responder_result;
  std::thread server([&] {
    auto transport = listener->Accept();
    ASSERT_NE(transport, nullptr);
    responder_result = RunResponderSession(*transport, pair.b);
  });

  auto client = TcpConnect("127.0.0.1", listener->port(), &error);
  ASSERT_NE(client, nullptr) << error;
  SessionConfig config;
  config.scheme_name = "pbs";
  config.options = TestOptions();
  config.options.pbs.strong_verification = true;
  const SessionResult result =
      RunInitiatorSession(*client, config, pair.a);
  server.join();

  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_TRUE(responder_result.ok) << responder_result.error;
  EXPECT_TRUE(result.outcome.success);
  EXPECT_EQ(result.outcome.difference.size(), pair.truth_diff.size());
  EXPECT_EQ(responder_result.outcome.rounds, result.outcome.rounds);
}

}  // namespace
}  // namespace pbs
