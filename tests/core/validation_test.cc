#include <gtest/gtest.h>

#include <stdexcept>

#include "pbs/core/pbs_endpoints.h"

namespace pbs {
namespace {

TEST(Validation, ZeroElementRejected) {
  PbsConfig config;
  EXPECT_THROW(PbsAlice({1, 0, 3}, config, 1), std::invalid_argument);
  EXPECT_THROW(PbsBob({0}, config, 1), std::invalid_argument);
}

TEST(Validation, OverWidthElementRejected) {
  PbsConfig config;
  config.sig_bits = 32;
  EXPECT_THROW(PbsAlice({uint64_t{1} << 33}, config, 1),
               std::invalid_argument);
}

TEST(Validation, ExactWidthElementAccepted) {
  PbsConfig config;
  config.sig_bits = 32;
  EXPECT_NO_THROW(PbsAlice({0xFFFFFFFFull}, config, 1));
}

TEST(Validation, WideSignaturesAccepted) {
  PbsConfig config;
  config.sig_bits = 63;
  EXPECT_NO_THROW(PbsBob({(uint64_t{1} << 63) - 1}, config, 1));
}

TEST(Validation, SubuniverseCheckTogglePreservesCorrectness) {
  // With the Procedure-3 check disabled the protocol still converges
  // (fakes are caught by the checksum loop), possibly using extra rounds.
  PbsConfig on;
  PbsConfig off = on;
  off.subuniverse_check = false;
  off.max_rounds = 8;
  std::vector<uint64_t> a, b;
  for (uint64_t i = 1; i <= 3000; ++i) a.push_back(i * 2654435761u % 0xFFFFFFFF + 1);
  b.assign(a.begin() + 50, a.end());
  PbsAlice alice(a, off, 3);
  PbsBob bob(b, off, 3);
  alice.SetDifferenceEstimate(50);
  bob.SetDifferenceEstimate(50);
  bool finished = false;
  for (int r = 0; r < off.max_rounds && !finished; ++r) {
    finished = alice.HandleRoundReply(
        bob.HandleRoundRequest(alice.MakeRoundRequest()));
  }
  EXPECT_TRUE(finished);
  EXPECT_EQ(alice.Difference().size(), 50u);
}

}  // namespace
}  // namespace pbs
