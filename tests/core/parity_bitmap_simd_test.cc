// Differential tests for the vectorized ParityBitmap paths: the batched
// build, the 32-byte-wide odd-bin scan, XOR fold, and equality compare
// must all be bit-identical to their scalar references across randomized
// sizes (including sizes that are not multiples of the vector width).

#include "pbs/core/parity_bitmap.h"

#include <gtest/gtest.h>

#include <vector>

#include "pbs/common/rng.h"
#include "pbs/gf/gf2m.h"

namespace pbs {
namespace {

std::vector<uint64_t> RandomElements(size_t count, Xoshiro256* rng) {
  std::vector<uint64_t> xs(count);
  for (auto& x : xs) x = rng->Next() | 1;  // Nonzero.
  return xs;
}

TEST(BitmapSimdDiff, BatchedBuildMatchesScalarBuild) {
  Xoshiro256 rng(0xB17347);
  // 4095+ crosses the binned-scatter gate (kScatterMinBins): those sizes
  // pin the bucketed reorder against the element-order scalar scatter.
  for (int n : {3, 31, 255, 1023, 2047, 4095, 65535}) {
    for (size_t count : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                         size_t{9}, size_t{100}, size_t{1000}}) {
      const SaltedHash h(rng.Next());
      const auto xs = RandomElements(count, &rng);
      ParityBitmap batched, scalar;
      ParityBitmap::BuildInto(xs, h, n, &batched);
      ParityBitmap::BuildIntoScalar(xs, h, n, &scalar);
      ASSERT_EQ(batched.xor_sum, scalar.xor_sum)
          << "n=" << n << " count=" << count;
      ASSERT_EQ(batched.parity, scalar.parity)
          << "n=" << n << " count=" << count;
    }
  }
}

TEST(BitmapSimdDiff, OddBinScanMatchesScalarScan) {
  Xoshiro256 rng(0x0DD5CA);
  const int t = 16;
  // Densities from empty through every-bin-odd, plus ragged n values that
  // leave a sub-vector tail.
  for (int small_n : {3, 30, 255, 2047}) {
    for (int fill : {0, 1, 5, 64, small_n}) {
      ParityBitmap pb;
      pb.n = small_n;
      pb.xor_sum.assign(small_n + 1, 0);
      pb.parity.assign(small_n + 1, 0);
      for (int i = 0; i < fill; ++i) {
        pb.parity[1 + rng.NextBounded(small_n)] ^= 1;
      }
      const GF2m f(small_n == 3     ? 2
                   : small_n == 30  ? 5
                   : small_n == 255 ? 8
                                    : 11);
      PowerSumSketch vec(f, t), ref(f, t);
      pb.ToSketchInto(&vec);
      pb.ToSketchIntoScalar(&ref);
      ASSERT_EQ(vec.odd_syndromes(), ref.odd_syndromes())
          << "n=" << small_n << " fill=" << fill;
    }
  }
}

TEST(BitmapSimdDiff, FoldXorMatchesScalarFold) {
  Xoshiro256 rng(0xF01DF0);
  for (int n : {3, 100, 255, 2047}) {
    const SaltedHash h(rng.Next());
    ParityBitmap a = ParityBitmap::Build(RandomElements(200, &rng), h, n);
    const ParityBitmap b = ParityBitmap::Build(RandomElements(150, &rng), h, n);
    ParityBitmap a_ref = a;
    a.FoldXor(b);
    a_ref.FoldXorScalar(b);
    ASSERT_EQ(a.xor_sum, a_ref.xor_sum) << "n=" << n;
    ASSERT_EQ(a.parity, a_ref.parity) << "n=" << n;
  }
}

TEST(BitmapSimdDiff, FoldingABitmapIntoItselfCancels) {
  Xoshiro256 rng(0xCA9CE1);
  const int n = 1023;
  const SaltedHash h(rng.Next());
  ParityBitmap a = ParityBitmap::Build(RandomElements(300, &rng), h, n);
  const ParityBitmap b = a;
  a.FoldXor(b);
  const ParityBitmap empty = ParityBitmap::Build(std::vector<uint64_t>{}, h, n);
  EXPECT_TRUE(a.Equals(empty));
}

TEST(BitmapSimdDiff, EqualsMatchesScalarEquals) {
  Xoshiro256 rng(0xE9A175);
  for (int n : {3, 100, 255, 2047}) {
    const SaltedHash h(rng.Next());
    const auto xs = RandomElements(200, &rng);
    const ParityBitmap a = ParityBitmap::Build(xs, h, n);
    ParityBitmap b = ParityBitmap::Build(xs, h, n);
    ASSERT_TRUE(a.Equals(b));
    ASSERT_TRUE(a.EqualsScalar(b));
    // Flip one parity byte / one xor_sum word at random offsets: both
    // forms must notice, wherever in the vectorized stride it lands.
    for (int trial = 0; trial < 16; ++trial) {
      ParityBitmap c = b;
      if (trial % 2 == 0) {
        c.parity[1 + rng.NextBounded(n)] ^= 1;
      } else {
        c.xor_sum[1 + rng.NextBounded(n)] ^= (rng.Next() | 1);
      }
      ASSERT_EQ(a.Equals(c), a.EqualsScalar(c)) << "n=" << n;
      ASSERT_FALSE(a.Equals(c)) << "n=" << n;
    }
  }
}

}  // namespace
}  // namespace pbs
