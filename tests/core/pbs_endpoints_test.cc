#include "pbs/core/pbs_endpoints.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "pbs/sim/workload.h"

namespace pbs {
namespace {

TEST(Endpoints, ManualMessageLoop) {
  SetPair pair = GenerateSetPair(2000, 20, 32, 1);
  PbsConfig config;
  PbsAlice alice(pair.a, config, 99);
  PbsBob bob(pair.b, config, 99);
  alice.SetDifferenceEstimate(20);
  bob.SetDifferenceEstimate(20);

  bool finished = false;
  int rounds = 0;
  while (!finished && rounds < config.max_rounds) {
    auto request = alice.MakeRoundRequest();
    auto reply = bob.HandleRoundRequest(request);
    finished = alice.HandleRoundReply(reply);
    ++rounds;
  }
  ASSERT_TRUE(finished);
  EXPECT_TRUE(alice.finished());
  auto diff = alice.Difference();
  std::sort(diff.begin(), diff.end());
  std::sort(pair.truth_diff.begin(), pair.truth_diff.end());
  EXPECT_EQ(diff, pair.truth_diff);
}

TEST(Endpoints, EstimateExchangeAgreesOnPlan) {
  SetPair pair = GenerateSetPair(3000, 64, 32, 2);
  PbsConfig config;
  PbsAlice alice(pair.a, config, 7);
  PbsBob bob(pair.b, config, 7);
  auto request = alice.MakeEstimateRequest();
  auto reply = bob.HandleEstimateRequest(request);
  alice.HandleEstimateReply(reply);
  EXPECT_EQ(alice.plan().d_used, bob.plan().d_used);
  EXPECT_EQ(alice.plan().params.n, bob.plan().params.n);
  EXPECT_EQ(alice.plan().params.t, bob.plan().params.t);
  // gamma-inflated estimate should (usually) cover the true d.
  EXPECT_GE(alice.plan().d_used, 40);
}

TEST(Endpoints, RoundRequestSizeMatchesPlan) {
  SetPair pair = GenerateSetPair(2000, 100, 32, 3);
  PbsConfig config;
  PbsAlice alice(pair.a, config, 11);
  alice.SetDifferenceEstimate(100);
  const auto& p = alice.plan().params;
  auto request = alice.MakeRoundRequest();
  // Round 1: g sketches of t*m bits, no flag bits.
  const size_t expected_bits =
      static_cast<size_t>(p.g) * p.t * p.m;
  EXPECT_EQ(request.size(), (expected_bits + 7) / 8);
}

TEST(Endpoints, FinishedFalseBeforeAnyRound) {
  PbsConfig config;
  PbsAlice alice({1, 2, 3}, config, 1);
  alice.SetDifferenceEstimate(1);
  EXPECT_FALSE(alice.finished());
}

TEST(Endpoints, TimersAccumulate) {
  SetPair pair = GenerateSetPair(20000, 200, 32, 4);
  PbsConfig config;
  PbsAlice alice(pair.a, config, 13);
  PbsBob bob(pair.b, config, 13);
  alice.SetDifferenceEstimate(200);
  bob.SetDifferenceEstimate(200);
  auto request = alice.MakeRoundRequest();
  auto reply = bob.HandleRoundRequest(request);
  alice.HandleRoundReply(reply);
  EXPECT_GT(alice.timers().encode_seconds, 0.0);
  EXPECT_GT(bob.timers().encode_seconds, 0.0);
  EXPECT_GT(bob.timers().decode_seconds, 0.0);
}

TEST(Endpoints, MismatchedSeedsFailGracefully) {
  // Different seeds -> different hash partitions -> protocol cannot settle
  // (but must not produce a false positive).
  SetPair pair = GenerateSetPair(1000, 10, 32, 5);
  PbsConfig config;
  PbsAlice alice(pair.a, config, 100);
  PbsBob bob(pair.b, config, 200);
  alice.SetDifferenceEstimate(10);
  bob.SetDifferenceEstimate(10);
  bool finished = false;
  for (int r = 0; r < config.max_rounds && !finished; ++r) {
    auto reply = bob.HandleRoundRequest(alice.MakeRoundRequest());
    finished = alice.HandleRoundReply(reply);
  }
  EXPECT_FALSE(finished);
}

}  // namespace
}  // namespace pbs
