// Golden wire-format tests: the protocol's serialized layouts, pinned.
//
// These tests freeze observable wire properties -- message sizes computed
// from the plan, field layouts, varint framing -- so that accidental
// format changes (which would break cross-version interop) fail loudly.

#include <gtest/gtest.h>

#include "pbs/core/messages.h"
#include "pbs/core/pbs_endpoints.h"
#include "pbs/estimator/tow.h"
#include "pbs/sim/workload.h"

namespace pbs {
namespace {

TEST(WireFormat, CountBitsWidths) {
  EXPECT_EQ(wire::BitWidthFor(1), 1);
  EXPECT_EQ(wire::BitWidthFor(2), 2);
  EXPECT_EQ(wire::BitWidthFor(13), 4);
  EXPECT_EQ(wire::BitWidthFor(17), 5);
  EXPECT_EQ(wire::CountBits(13), 4);
  EXPECT_EQ(wire::CountBits(16), 5);
}

TEST(WireFormat, RoundOneRequestIsExactlyGSketches) {
  SetPair pair = GenerateSetPair(2000, 100, 32, 1);
  PbsConfig config;
  PbsAlice alice(pair.a, config, 7);
  alice.SetDifferenceEstimate(100);
  const auto& p = alice.plan().params;
  const auto request = alice.MakeRoundRequest();
  EXPECT_EQ(request.size(),
            (static_cast<size_t>(p.g) * p.t * p.m + 7) / 8);
}

TEST(WireFormat, RoundOneReplyLayout) {
  // Reply = per unit: 1 fail bit + count + positions + xors + checksum.
  SetPair pair = GenerateSetPair(2000, 0, 32, 2);  // No differences.
  PbsConfig config;
  PbsAlice alice(pair.a, config, 9);
  PbsBob bob(pair.b, config, 9);
  alice.SetDifferenceEstimate(0);
  bob.SetDifferenceEstimate(0);
  const auto& p = alice.plan().params;
  const auto reply = bob.HandleRoundRequest(alice.MakeRoundRequest());
  // d=0 -> g=1 unit, zero decoded positions:
  // 1 + count_bits + 0 + 32 bits.
  const size_t expected_bits = 1 + wire::CountBits(p.t) + 32;
  EXPECT_EQ(reply.size(), (expected_bits + 7) / 8);
}

TEST(WireFormat, EstimateRequestSizeMatchesFormula) {
  SetPair pair = GenerateSetPair(1000, 10, 32, 3);
  PbsConfig config;
  PbsAlice alice(pair.a, config, 11);
  const auto request = alice.MakeEstimateRequest();
  // varint(|A| = 1000) = 2 groups of 8 bits; 128 counters of
  // ceil(log2(2001)) = 11 bits.
  const size_t expected_bits = 16 + 128 * 11;
  EXPECT_EQ(request.size(), (expected_bits + 7) / 8);
}

TEST(WireFormat, EstimateReplyIsFourBytes) {
  SetPair pair = GenerateSetPair(1000, 10, 32, 4);
  PbsConfig config;
  PbsAlice alice(pair.a, config, 13);
  PbsBob bob(pair.b, config, 13);
  const auto reply = bob.HandleEstimateRequest(alice.MakeEstimateRequest());
  EXPECT_EQ(reply.size(), 4u);
}

TEST(WireFormat, StrongDigestIsTwentyFourBytes) {
  PbsConfig config;
  PbsBob bob({1, 2, 3}, config, 15);
  EXPECT_EQ(bob.MakeStrongDigest().size(), 24u);
}

TEST(WireFormat, PaperFormulaOneFirstRoundBytes) {
  // Formula (1): per group, t log n + delta_i log n + delta_i log|U| +
  // log|U| bits (+ 1 status bit and a count field in this implementation).
  // Verify against a d = 0 instance where delta_i = 0 for the single group
  // and an exact-d instance at the paper's parameters.
  SetPair pair = GenerateSetPair(20000, 1000, 32, 5);
  PbsConfig config;
  PbsAlice alice(pair.a, config, 17);
  PbsBob bob(pair.b, config, 17);
  alice.SetDifferenceEstimate(1000);
  bob.SetDifferenceEstimate(1000);
  const auto& p = alice.plan().params;
  ASSERT_EQ(p.n, 127);
  ASSERT_EQ(p.t, 13);
  const auto request = alice.MakeRoundRequest();
  const auto reply = bob.HandleRoundRequest(request);
  const double total_bits = 8.0 * (request.size() + reply.size());
  // Paper formula totalled over g groups with sum(delta_i) = d:
  // g*(t*7 + 32) + d*(7 + 32) bits = 200*123 + 1000*39 = 63.6 kbit.
  const double formula_bits = p.g * (p.t * 7.0 + 32.0) + 1000.0 * (7 + 32);
  // Implementation overhead (fail bits, count fields) is < 5%.
  EXPECT_NEAR(total_bits, formula_bits, 0.05 * formula_bits);
}

}  // namespace
}  // namespace pbs
