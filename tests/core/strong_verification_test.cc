// The Section-2.2.3 strong-verification epilogue and the Section-1.1
// bidirectional completion.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "pbs/core/reconciler.h"
#include "pbs/sim/workload.h"

namespace pbs {
namespace {

TEST(StrongVerification, PassesOnCorrectReconciliation) {
  SetPair pair = GenerateSetPair(3000, 40, 32, 1);
  PbsConfig config;
  config.strong_verification = true;
  Transcript transcript;
  auto result =
      PbsSession::Reconcile(pair.a, pair.b, config, 7, 40, &transcript);
  ASSERT_TRUE(result.success);
  // The epilogue costs exactly one 24-byte digest message.
  bool saw_digest = false;
  for (const auto& entry : transcript.entries()) {
    if (entry.label == "strong_digest") {
      saw_digest = true;
      EXPECT_EQ(entry.bytes, 24u);
    }
  }
  EXPECT_TRUE(saw_digest);
}

TEST(StrongVerification, DigestVerifiesManually) {
  SetPair pair = GenerateSetPair(2000, 25, 32, 2);
  PbsConfig config;
  PbsAlice alice(pair.a, config, 9);
  PbsBob bob(pair.b, config, 9);
  alice.SetDifferenceEstimate(25);
  bob.SetDifferenceEstimate(25);
  bool finished = false;
  while (!finished) {
    finished = alice.HandleRoundReply(
        bob.HandleRoundRequest(alice.MakeRoundRequest()));
  }
  EXPECT_TRUE(alice.VerifyStrongDigest(bob.MakeStrongDigest()));
}

TEST(StrongVerification, RejectsTamperedDigest) {
  SetPair pair = GenerateSetPair(2000, 25, 32, 3);
  PbsConfig config;
  PbsAlice alice(pair.a, config, 11);
  PbsBob bob(pair.b, config, 11);
  alice.SetDifferenceEstimate(25);
  bob.SetDifferenceEstimate(25);
  bool finished = false;
  while (!finished) {
    finished = alice.HandleRoundReply(
        bob.HandleRoundRequest(alice.MakeRoundRequest()));
  }
  auto digest = bob.MakeStrongDigest();
  digest[5] ^= 0x40;
  EXPECT_FALSE(alice.VerifyStrongDigest(digest));
}

TEST(StrongVerification, RejectsTruncatedDigest) {
  SetPair pair = GenerateSetPair(1000, 5, 32, 4);
  PbsConfig config;
  PbsAlice alice(pair.a, config, 13);
  PbsBob bob(pair.b, config, 13);
  alice.SetDifferenceEstimate(5);
  bob.SetDifferenceEstimate(5);
  alice.HandleRoundReply(bob.HandleRoundRequest(alice.MakeRoundRequest()));
  auto digest = bob.MakeStrongDigest();
  digest.resize(10);
  EXPECT_FALSE(alice.VerifyStrongDigest(digest));
}

TEST(Bidirectional, ElementsOnlyInASubsetOfDifference) {
  SetPair pair = GenerateTwoSidedPair(2500, 30, 20, 32, 5);
  PbsConfig config;
  PbsAlice alice(pair.a, config, 17);
  PbsBob bob(pair.b, config, 17);
  alice.SetDifferenceEstimate(70);
  bob.SetDifferenceEstimate(70);
  bool finished = false;
  while (!finished) {
    finished = alice.HandleRoundReply(
        bob.HandleRoundRequest(alice.MakeRoundRequest()));
  }
  auto a_only = alice.ElementsOnlyInA();
  EXPECT_EQ(a_only.size(), 30u);
  std::unordered_set<uint64_t> in_a(pair.a.begin(), pair.a.end());
  std::unordered_set<uint64_t> in_b(pair.b.begin(), pair.b.end());
  for (uint64_t e : a_only) {
    EXPECT_TRUE(in_a.count(e));
    EXPECT_FALSE(in_b.count(e));
  }
}

TEST(Bidirectional, BobFormsUnionFromShippedElements) {
  // The full Section-1.1 flow: Alice learns A triangle B, ships A \ B to
  // Bob; both now hold A u B.
  SetPair pair = GenerateTwoSidedPair(1500, 25, 15, 32, 6);
  PbsConfig config;
  PbsAlice alice(pair.a, config, 19);
  PbsBob bob(pair.b, config, 19);
  alice.SetDifferenceEstimate(56);
  bob.SetDifferenceEstimate(56);
  bool finished = false;
  while (!finished) {
    finished = alice.HandleRoundReply(
        bob.HandleRoundRequest(alice.MakeRoundRequest()));
  }

  std::unordered_set<uint64_t> alice_union(pair.a.begin(), pair.a.end());
  std::unordered_set<uint64_t> in_a(pair.a.begin(), pair.a.end());
  for (uint64_t e : alice.Difference()) {
    if (!in_a.count(e)) alice_union.insert(e);  // B-only elements.
  }
  std::unordered_set<uint64_t> bob_union(pair.b.begin(), pair.b.end());
  for (uint64_t e : alice.ElementsOnlyInA()) bob_union.insert(e);

  std::unordered_set<uint64_t> expected(pair.a.begin(), pair.a.end());
  for (uint64_t e : pair.b) expected.insert(e);
  EXPECT_EQ(alice_union, expected);
  EXPECT_EQ(bob_union, expected);
}

}  // namespace
}  // namespace pbs
