#include "pbs/gf/gf2x.h"

#include <gtest/gtest.h>

#include <string>

#include "pbs/common/cpu_features.h"
#include "pbs/common/rng.h"

namespace pbs::gf2x {
namespace {

TEST(Gf2x, DegreeOfZeroIsMinusOne) {
  EXPECT_EQ(Degree(0), -1);
  EXPECT_EQ(Degree128(0), -1);
}

TEST(Gf2x, DegreeBasics) {
  EXPECT_EQ(Degree(1), 0);
  EXPECT_EQ(Degree(2), 1);   // x
  EXPECT_EQ(Degree(0b1011), 3);
  EXPECT_EQ(Degree(uint64_t{1} << 63), 63);
  EXPECT_EQ(Degree128(static_cast<U128>(1) << 100), 100);
}

TEST(Gf2x, ClMulSmallCases) {
  // (x+1)(x+1) = x^2 + 1 over GF(2).
  EXPECT_EQ(static_cast<uint64_t>(ClMul(0b11, 0b11)), 0b101u);
  // x * x = x^2.
  EXPECT_EQ(static_cast<uint64_t>(ClMul(2, 2)), 4u);
  // (x^2+x+1)(x+1) = x^3 + 1.
  EXPECT_EQ(static_cast<uint64_t>(ClMul(0b111, 0b11)), 0b1001u);
  EXPECT_EQ(static_cast<uint64_t>(ClMul(0, 12345)), 0u);
  EXPECT_EQ(static_cast<uint64_t>(ClMul(1, 12345)), 12345u);
}

TEST(Gf2x, ClMulCommutativeAndDistributive) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = rng.Next(), b = rng.Next(), c = rng.Next();
    EXPECT_EQ(ClMul(a, b), ClMul(b, a));
    EXPECT_EQ(ClMul(a, b ^ c), ClMul(a, b) ^ ClMul(a, c));
  }
}

TEST(Gf2x, ClMulHighBitsReachUpperWord) {
  const U128 p = ClMul(uint64_t{1} << 63, uint64_t{1} << 63);
  EXPECT_EQ(Degree128(p), 126);
}

TEST(Gf2x, ModReducesDegree) {
  const uint64_t f = 0b10011;  // x^4 + x + 1.
  Xoshiro256 rng(4);
  for (int i = 0; i < 200; ++i) {
    const uint64_t r = Mod(rng.Next(), f);
    EXPECT_LT(Degree(r), 4);
  }
}

TEST(Gf2x, ModIsIdentityBelowModulus) {
  const uint64_t f = 0b10011;
  for (uint64_t v = 0; v < 16; ++v) EXPECT_EQ(Mod(v, f), v);
}

TEST(Gf2x, MulModMatchesKnownField) {
  // GF(16) with x^4 + x + 1: x^3 * x = x^4 = x + 1.
  const uint64_t f = 0b10011;
  EXPECT_EQ(MulMod(0b1000, 0b0010, f), 0b0011u);
}

TEST(Gf2x, GcdBasics) {
  // gcd(x^2+1, x+1) = x+1 since x^2+1 = (x+1)^2 over GF(2).
  EXPECT_EQ(Gcd(0b101, 0b11), 0b11u);
  EXPECT_EQ(Gcd(0, 0b101), 0b101u);
  EXPECT_EQ(Gcd(0b101, 0), 0b101u);
  // Coprime: gcd(x^2+x+1, x) = 1.
  EXPECT_EQ(Gcd(0b111, 0b10), 1u);
}

TEST(Gf2x, IsIrreducibleKnownPolynomials) {
  EXPECT_TRUE(IsIrreducible(0b111));        // x^2+x+1.
  EXPECT_TRUE(IsIrreducible(0b1011));       // x^3+x+1.
  EXPECT_TRUE(IsIrreducible(0b10011));      // x^4+x+1.
  EXPECT_TRUE(IsIrreducible(0x11B));        // x^8+x^4+x^3+x+1 (AES).
  EXPECT_FALSE(IsIrreducible(0b110));       // x^2+x = x(x+1).
  EXPECT_FALSE(IsIrreducible(0b101));       // x^2+1 = (x+1)^2.
  EXPECT_FALSE(IsIrreducible(0b1010011));   // Even number of terms: 1 is a root.
}

TEST(Gf2x, CyclotomicQuinticIsIrreducible) {
  EXPECT_TRUE(IsIrreducible(0b11111));  // x^4+x^3+x^2+x+1, ord_5(2)=4.
}

TEST(Gf2x, ReducibleProductsDetected) {
  // Product of the two irreducible cubics: (x^3+x+1)(x^3+x^2+1), degree 6.
  const uint64_t product = static_cast<uint64_t>(ClMul(0b1011, 0b1101));
  EXPECT_FALSE(IsIrreducible(product));
}

// FindIrreducible must return an irreducible polynomial of the right degree
// for every supported m.
class FindIrreducibleTest : public ::testing::TestWithParam<int> {};

TEST_P(FindIrreducibleTest, ReturnsIrreducibleOfCorrectDegree) {
  const int m = GetParam();
  const uint64_t f = FindIrreducible(m);
  EXPECT_EQ(Degree(f), m);
  EXPECT_TRUE(IsIrreducible(f));
  // Minimality: no smaller polynomial with the same leading term works.
  if (m <= 12) {
    for (uint64_t low = 1; (uint64_t{1} << m | low) < f; low += 2) {
      EXPECT_FALSE(IsIrreducible((uint64_t{1} << m) | low));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, FindIrreducibleTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                           13, 14, 15, 16, 20, 24, 31, 32, 33,
                                           40, 48, 63));

// ---------------------------------------------------------------------------
// Dispatch differential: the hardware carry-less kernel (PCLMULQDQ/PMULL,
// picked at runtime by cpu::HasCarrylessMul()) against the always-compiled
// portable shift-and-XOR kernel. On machines without the instructions --
// or under -DPBS_DISABLE_CLMUL=ON -- ClMul *is* ClMulPortable and the
// comparison is trivially (but still meaningfully, for the build) true.
// ---------------------------------------------------------------------------

TEST(Gf2xDispatch, ClMulMatchesPortableOnRandomOperands) {
  SCOPED_TRACE(std::string("backend: ") + cpu::CarrylessMulBackend());
  Xoshiro256 rng(0xC1);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t a = rng.Next();
    const uint64_t b = rng.Next();
    ASSERT_EQ(ClMul(a, b), ClMulPortable(a, b))
        << "a=" << a << " b=" << b;
  }
}

TEST(Gf2xDispatch, ClMulMatchesPortableOnEdgeOperands) {
  const uint64_t edges[] = {0,    1,    2,       3,
                            0xFF, ~0ull, 1ull << 63, (1ull << 63) | 1,
                            0x8000000080000001ull, 0x5555555555555555ull,
                            0xAAAAAAAAAAAAAAAAull};
  for (uint64_t a : edges) {
    for (uint64_t b : edges) {
      EXPECT_EQ(ClMul(a, b), ClMulPortable(a, b)) << "a=" << a << " b=" << b;
    }
  }
}

// The table-free GF(2^m) fields (m in [17, 63]) route every multiply
// through MulMod; pin the dispatched path to the portable one over each
// field's canonical modulus.
TEST(Gf2xDispatch, MulModMatchesPortableForAllTableFreeFields) {
  for (int m = 17; m <= 63; ++m) {
    const uint64_t f = FindIrreducible(m);
    Xoshiro256 rng(static_cast<uint64_t>(m) * 104729);
    const uint64_t mask = (uint64_t{1} << m) - 1;
    for (int i = 0; i < 200; ++i) {
      const uint64_t a = rng.Next() & mask;
      const uint64_t b = rng.Next() & mask;
      ASSERT_EQ(MulMod(a, b, f), MulModPortable(a, b, f))
          << "m=" << m << " a=" << a << " b=" << b;
    }
  }
}

}  // namespace
}  // namespace pbs::gf2x
