// Structural field properties the decoders rely on implicitly:
// Frobenius, the absolute trace map, and the trace-polynomial identity
// behind Berlekamp trace splitting (gf/roots.cc).

#include <gtest/gtest.h>

#include "pbs/common/rng.h"
#include "pbs/gf/gf2m.h"

namespace pbs {
namespace {

// Absolute trace Tr(x) = x + x^2 + x^4 + ... + x^(2^(m-1)).
uint64_t Trace(const GF2m& f, uint64_t x) {
  uint64_t acc = 0;
  uint64_t term = x;
  for (int i = 0; i < f.m(); ++i) {
    acc ^= term;
    term = f.Sqr(term);
  }
  return acc;
}

class FieldStructure : public ::testing::TestWithParam<int> {};

TEST_P(FieldStructure, FrobeniusFixesExactlyGf2) {
  // x^2 == x holds exactly for the prime subfield {0, 1}.
  GF2m f(GetParam());
  Xoshiro256 rng(GetParam());
  EXPECT_EQ(f.Sqr(0), 0u);
  EXPECT_EQ(f.Sqr(1), 1u);
  for (int i = 0; i < 100; ++i) {
    const uint64_t x = rng.NextBounded(f.order() - 1) + 2;
    EXPECT_NE(f.Sqr(x), x) << x;
  }
}

TEST_P(FieldStructure, FrobeniusOrderIsM) {
  // Applying squaring m times is the identity.
  GF2m f(GetParam());
  Xoshiro256 rng(GetParam() + 1);
  for (int i = 0; i < 50; ++i) {
    const uint64_t x = rng.NextBounded(f.order() + 1);
    uint64_t y = x;
    for (int k = 0; k < f.m(); ++k) y = f.Sqr(y);
    EXPECT_EQ(y, x);
  }
}

TEST_P(FieldStructure, TraceLandsInGf2) {
  GF2m f(GetParam());
  Xoshiro256 rng(GetParam() + 2);
  for (int i = 0; i < 200; ++i) {
    const uint64_t tr = Trace(f, rng.NextBounded(f.order() + 1));
    EXPECT_TRUE(tr == 0 || tr == 1);
  }
}

TEST_P(FieldStructure, TraceIsAdditive) {
  GF2m f(GetParam());
  Xoshiro256 rng(GetParam() + 3);
  for (int i = 0; i < 100; ++i) {
    const uint64_t x = rng.NextBounded(f.order() + 1);
    const uint64_t y = rng.NextBounded(f.order() + 1);
    EXPECT_EQ(Trace(f, GF2m::Add(x, y)),
              Trace(f, x) ^ Trace(f, y));
  }
}

TEST_P(FieldStructure, TraceInvariantUnderFrobenius) {
  GF2m f(GetParam());
  Xoshiro256 rng(GetParam() + 4);
  for (int i = 0; i < 100; ++i) {
    const uint64_t x = rng.NextBounded(f.order() + 1);
    EXPECT_EQ(Trace(f, f.Sqr(x)), Trace(f, x));
  }
}

TEST_P(FieldStructure, TraceIsBalanced) {
  // Exactly half the field has trace 0 -- the property that makes a random
  // beta split a root pair with probability 1/2 in TraceSplit.
  const int m = GetParam();
  if (m > 14) GTEST_SKIP() << "exhaustive sweep only for small fields";
  GF2m f(m);
  uint64_t zeros = 0;
  for (uint64_t x = 0; x <= f.order(); ++x) {
    if (Trace(f, x) == 0) ++zeros;
  }
  EXPECT_EQ(zeros, (f.order() + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Fields, FieldStructure,
                         ::testing::Values(3, 7, 8, 11, 13, 32, 63));

TEST(FieldStructure, SquaringIsBijective) {
  // In characteristic 2 every element has a unique square root; exhaustive
  // in GF(2^10).
  GF2m f(10);
  std::vector<bool> seen(f.order() + 1, false);
  for (uint64_t x = 0; x <= f.order(); ++x) {
    const uint64_t s = f.Sqr(x);
    EXPECT_FALSE(seen[s]);
    seen[s] = true;
  }
}

TEST(FieldStructure, MultiplicativeGroupIsCyclicOfFullOrder) {
  // Some element generates all of GF(2^8)* (exhaustive order check).
  GF2m f(8);
  bool found_generator = false;
  for (uint64_t g = 2; g <= 20 && !found_generator; ++g) {
    uint64_t v = g;
    uint64_t steps = 1;
    while (v != 1) {
      v = f.Mul(v, g);
      ++steps;
    }
    found_generator = steps == f.order();
  }
  EXPECT_TRUE(found_generator);
}

}  // namespace
}  // namespace pbs
