#include "pbs/gf/gf2m.h"

#include <gtest/gtest.h>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

// Field-axiom property sweep over both implementation paths: table-based
// (m <= 16) and clmul-based (m > 16).
class GF2mField : public ::testing::TestWithParam<int> {
 protected:
  uint64_t RandomNonzero(const GF2m& f, Xoshiro256* rng) {
    return rng->NextBounded(f.order()) + 1;
  }
};

TEST_P(GF2mField, MultiplicativeIdentity) {
  GF2m f(GetParam());
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const uint64_t a = RandomNonzero(f, &rng);
    EXPECT_EQ(f.Mul(a, 1), a);
    EXPECT_EQ(f.Mul(1, a), a);
  }
}

TEST_P(GF2mField, ZeroAnnihilates) {
  GF2m f(GetParam());
  Xoshiro256 rng(GetParam() + 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(f.Mul(RandomNonzero(f, &rng), 0), 0u);
  }
}

TEST_P(GF2mField, MulCommutativeAssociative) {
  GF2m f(GetParam());
  Xoshiro256 rng(GetParam() + 2);
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = RandomNonzero(f, &rng);
    const uint64_t b = RandomNonzero(f, &rng);
    const uint64_t c = RandomNonzero(f, &rng);
    EXPECT_EQ(f.Mul(a, b), f.Mul(b, a));
    EXPECT_EQ(f.Mul(f.Mul(a, b), c), f.Mul(a, f.Mul(b, c)));
  }
}

TEST_P(GF2mField, DistributesOverAddition) {
  GF2m f(GetParam());
  Xoshiro256 rng(GetParam() + 3);
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = RandomNonzero(f, &rng);
    const uint64_t b = RandomNonzero(f, &rng);
    const uint64_t c = RandomNonzero(f, &rng);
    EXPECT_EQ(f.Mul(a, GF2m::Add(b, c)),
              GF2m::Add(f.Mul(a, b), f.Mul(a, c)));
  }
}

TEST_P(GF2mField, InverseIsTwoSided) {
  GF2m f(GetParam());
  Xoshiro256 rng(GetParam() + 4);
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = RandomNonzero(f, &rng);
    const uint64_t inv = f.Inv(a);
    EXPECT_NE(inv, 0u);
    EXPECT_EQ(f.Mul(a, inv), 1u);
    EXPECT_EQ(f.Mul(inv, a), 1u);
  }
}

TEST_P(GF2mField, SqrMatchesMul) {
  GF2m f(GetParam());
  Xoshiro256 rng(GetParam() + 5);
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = rng.NextBounded(f.order() + 1);
    EXPECT_EQ(f.Sqr(a), f.Mul(a, a));
  }
}

TEST_P(GF2mField, FrobeniusIsAdditive) {
  // (a + b)^2 = a^2 + b^2 in characteristic 2.
  GF2m f(GetParam());
  Xoshiro256 rng(GetParam() + 6);
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = rng.NextBounded(f.order() + 1);
    const uint64_t b = rng.NextBounded(f.order() + 1);
    EXPECT_EQ(f.Sqr(GF2m::Add(a, b)), GF2m::Add(f.Sqr(a), f.Sqr(b)));
  }
}

TEST_P(GF2mField, PowMatchesRepeatedMul) {
  GF2m f(GetParam());
  Xoshiro256 rng(GetParam() + 7);
  const uint64_t a = RandomNonzero(f, &rng);
  uint64_t acc = 1;
  for (uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(f.Pow(a, e), acc);
    acc = f.Mul(acc, a);
  }
}

TEST_P(GF2mField, FermatLittleTheorem) {
  // a^(2^m - 1) = 1 for nonzero a.
  GF2m f(GetParam());
  Xoshiro256 rng(GetParam() + 8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(f.Pow(RandomNonzero(f, &rng), f.order()), 1u);
  }
}

TEST_P(GF2mField, DivRoundTrips) {
  GF2m f(GetParam());
  Xoshiro256 rng(GetParam() + 9);
  for (int i = 0; i < 100; ++i) {
    const uint64_t a = RandomNonzero(f, &rng);
    const uint64_t b = RandomNonzero(f, &rng);
    EXPECT_EQ(f.Mul(f.Div(a, b), b), a);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallAndLargeFields, GF2mField,
                         ::testing::Values(2, 3, 4, 6, 7, 8, 10, 11, 12, 16,
                                           17, 20, 24, 32, 40, 48, 63));

TEST(GF2m, TablePathMatchesClmulPath) {
  // Exhaustively compare GF(2^6) table multiplication against raw gf2x.
  GF2m f(6);
  const uint64_t modulus = f.modulus();
  for (uint64_t a = 0; a < 64; ++a) {
    for (uint64_t b = 0; b < 64; ++b) {
      EXPECT_EQ(f.Mul(a, b), gf2x::MulMod(a, b, modulus));
    }
  }
}

TEST(GF2m, AllInversesExhaustiveSmallField) {
  GF2m f(8);
  for (uint64_t a = 1; a <= f.order(); ++a) {
    EXPECT_EQ(f.Mul(a, f.Inv(a)), 1u);
  }
}

TEST(GF2m, CachedHandlesShareState) {
  GF2m f1(11), f2(11);
  EXPECT_TRUE(f1 == f2);
  EXPECT_EQ(f1.modulus(), f2.modulus());
}

TEST(GF2m, OrderAndBitmapSizesMatchPbsPlans) {
  // The bitmap sizes used by PBS: n = 2^m - 1 for m in 6..11.
  for (int m = 6; m <= 11; ++m) {
    GF2m f(m);
    EXPECT_EQ(f.order(), (uint64_t{1} << m) - 1);
  }
}

}  // namespace
}  // namespace pbs
