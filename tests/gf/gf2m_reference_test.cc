// Differential test of GF2m against an independent shift-and-reduce
// reference implementation.
//
// The production field arithmetic has two very different backends --
// log/antilog tables for m <= 16 and carry-less multiply + modular
// reduction (gf2x) beyond -- and the Workspace refactor leans on both
// staying exactly right. This test reimplements GF(2^m) multiplication
// from first principles (bit-at-a-time schoolbook carry-less product,
// then long-division reduction by the field modulus), sharing no code
// with gf2x.h, and checks Mul/Sqr/Div/Inv/Pow against it across every
// supported degree m in [2, 63]: exhaustively over all element pairs for
// small m, on structured + pseudorandom samples for large m.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "pbs/common/rng.h"
#include "pbs/gf/gf2m.h"

namespace pbs {
namespace {

// Degree of the GF(2) polynomial `a` (index of its highest set bit);
// -1 for a = 0.
int RefDegree(uint64_t hi, uint64_t lo) {
  for (int bit = 63; bit >= 0; --bit) {
    if (hi >> bit & 1) return 64 + bit;
  }
  for (int bit = 63; bit >= 0; --bit) {
    if (lo >> bit & 1) return bit;
  }
  return -1;
}

// Schoolbook carry-less product of two < 2^64 polynomials over GF(2),
// as a 128-bit (hi, lo) pair, one shift-and-XOR per set bit of `b`.
void RefClmul(uint64_t a, uint64_t b, uint64_t* hi, uint64_t* lo) {
  *hi = 0;
  *lo = 0;
  for (int bit = 0; bit < 64; ++bit) {
    if ((b >> bit & 1) == 0) continue;
    *lo ^= a << bit;
    if (bit > 0) *hi ^= a >> (64 - bit);
  }
}

// Long-division reduction of the 128-bit polynomial (hi, lo) by the
// degree-m modulus (leading bit included), one aligned XOR per quotient
// bit, highest degree first.
uint64_t RefReduce(uint64_t hi, uint64_t lo, uint64_t modulus, int m) {
  for (int deg = RefDegree(hi, lo); deg >= m; deg = RefDegree(hi, lo)) {
    const int shift = deg - m;
    if (shift >= 64) {
      hi ^= modulus << (shift - 64);
    } else {
      lo ^= modulus << shift;
      if (shift > 0) hi ^= modulus >> (64 - shift);
    }
  }
  return lo;
}

uint64_t RefMul(uint64_t a, uint64_t b, uint64_t modulus, int m) {
  uint64_t hi, lo;
  RefClmul(a, b, &hi, &lo);
  return RefReduce(hi, lo, modulus, m);
}

// A spread of structured elements for the sampled (large-m) degrees:
// boundary values, single bits, and dense patterns.
std::vector<uint64_t> StructuredElements(const GF2m& field) {
  std::vector<uint64_t> elems = {1, 2, 3, field.order(), field.order() - 1,
                                 field.order() >> 1};
  for (int bit = 0; bit < field.m(); bit += 7) {
    elems.push_back(uint64_t{1} << bit);
  }
  return elems;
}

class GF2mReferenceTest : public ::testing::TestWithParam<int> {};

TEST_P(GF2mReferenceTest, MulMatchesShiftAndReduceReference) {
  const int m = GetParam();
  const GF2m field(m);
  const uint64_t modulus = field.modulus();

  if (m <= 8) {
    // Exhaustive: every ordered pair of field elements (including 0).
    for (uint64_t a = 0; a <= field.order(); ++a) {
      for (uint64_t b = 0; b <= field.order(); ++b) {
        ASSERT_EQ(field.Mul(a, b), RefMul(a, b, modulus, m))
            << "m=" << m << " a=" << a << " b=" << b;
      }
    }
    return;
  }

  // Sampled: structured elements plus pseudorandom pairs.
  std::vector<uint64_t> elems = StructuredElements(field);
  Xoshiro256 rng(0x5EED0000 + static_cast<uint64_t>(m));
  for (int i = 0; i < 64; ++i) {
    elems.push_back(rng.NextBounded(field.order()) + 1);
  }
  for (uint64_t a : elems) {
    for (uint64_t b : elems) {
      ASSERT_EQ(field.Mul(a, b), RefMul(a, b, modulus, m))
          << "m=" << m << " a=" << a << " b=" << b;
    }
  }
}

TEST_P(GF2mReferenceTest, SqrInvDivPowAgreeWithReference) {
  const int m = GetParam();
  const GF2m field(m);
  const uint64_t modulus = field.modulus();

  std::vector<uint64_t> elems;
  if (m <= 10) {
    for (uint64_t a = 1; a <= field.order(); ++a) elems.push_back(a);
  } else {
    elems = StructuredElements(field);
    Xoshiro256 rng(0xFACE0000 + static_cast<uint64_t>(m));
    for (int i = 0; i < 128; ++i) {
      elems.push_back(rng.NextBounded(field.order()) + 1);
    }
  }

  for (uint64_t a : elems) {
    // Squaring is reference multiplication by itself.
    ASSERT_EQ(field.Sqr(a), RefMul(a, a, modulus, m)) << "m=" << m
                                                      << " a=" << a;
    // Inverse: verified multiplicatively through the reference product.
    const uint64_t inv = field.Inv(a);
    ASSERT_NE(inv, 0u);
    ASSERT_EQ(RefMul(a, inv, modulus, m), 1u) << "m=" << m << " a=" << a;
    // Division against reference mul-by-inverse.
    const uint64_t b = elems[(a * 7) % elems.size()];
    ASSERT_EQ(field.Div(b, a), RefMul(b, inv, modulus, m))
        << "m=" << m << " a=" << a << " b=" << b;
    // Pow: cube via two reference multiplications.
    ASSERT_EQ(field.Pow(a, 3), RefMul(RefMul(a, a, modulus, m), a, modulus, m))
        << "m=" << m << " a=" << a;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSupportedDegrees, GF2mReferenceTest,
                         ::testing::Range(2, 64),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace pbs
