// Differential test of GF2m against an independent shift-and-reduce
// reference implementation.
//
// The production field arithmetic has two very different backends --
// log/antilog tables for m <= 16 and carry-less multiply + modular
// reduction (gf2x) beyond -- and the Workspace refactor leans on both
// staying exactly right. This test reimplements GF(2^m) multiplication
// from first principles (bit-at-a-time schoolbook carry-less product,
// then long-division reduction by the field modulus), sharing no code
// with gf2x.h, and checks Mul/Sqr/Div/Inv/Pow against it across every
// supported degree m in [2, 63]: exhaustively over all element pairs for
// small m, on structured + pseudorandom samples for large m.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "pbs/common/rng.h"
#include "pbs/gf/gf2m.h"

namespace pbs {
namespace {

// Degree of the GF(2) polynomial `a` (index of its highest set bit);
// -1 for a = 0.
int RefDegree(uint64_t hi, uint64_t lo) {
  for (int bit = 63; bit >= 0; --bit) {
    if (hi >> bit & 1) return 64 + bit;
  }
  for (int bit = 63; bit >= 0; --bit) {
    if (lo >> bit & 1) return bit;
  }
  return -1;
}

// Schoolbook carry-less product of two < 2^64 polynomials over GF(2),
// as a 128-bit (hi, lo) pair, one shift-and-XOR per set bit of `b`.
void RefClmul(uint64_t a, uint64_t b, uint64_t* hi, uint64_t* lo) {
  *hi = 0;
  *lo = 0;
  for (int bit = 0; bit < 64; ++bit) {
    if ((b >> bit & 1) == 0) continue;
    *lo ^= a << bit;
    if (bit > 0) *hi ^= a >> (64 - bit);
  }
}

// Long-division reduction of the 128-bit polynomial (hi, lo) by the
// degree-m modulus (leading bit included), one aligned XOR per quotient
// bit, highest degree first.
uint64_t RefReduce(uint64_t hi, uint64_t lo, uint64_t modulus, int m) {
  for (int deg = RefDegree(hi, lo); deg >= m; deg = RefDegree(hi, lo)) {
    const int shift = deg - m;
    if (shift >= 64) {
      hi ^= modulus << (shift - 64);
    } else {
      lo ^= modulus << shift;
      if (shift > 0) hi ^= modulus >> (64 - shift);
    }
  }
  return lo;
}

uint64_t RefMul(uint64_t a, uint64_t b, uint64_t modulus, int m) {
  uint64_t hi, lo;
  RefClmul(a, b, &hi, &lo);
  return RefReduce(hi, lo, modulus, m);
}

// A spread of structured elements for the sampled (large-m) degrees:
// boundary values, single bits, and dense patterns.
std::vector<uint64_t> StructuredElements(const GF2m& field) {
  std::vector<uint64_t> elems = {1, 2, 3, field.order(), field.order() - 1,
                                 field.order() >> 1};
  for (int bit = 0; bit < field.m(); bit += 7) {
    elems.push_back(uint64_t{1} << bit);
  }
  return elems;
}

class GF2mReferenceTest : public ::testing::TestWithParam<int> {};

TEST_P(GF2mReferenceTest, MulMatchesShiftAndReduceReference) {
  const int m = GetParam();
  const GF2m field(m);
  const uint64_t modulus = field.modulus();

  if (m <= 8) {
    // Exhaustive: every ordered pair of field elements (including 0).
    for (uint64_t a = 0; a <= field.order(); ++a) {
      for (uint64_t b = 0; b <= field.order(); ++b) {
        ASSERT_EQ(field.Mul(a, b), RefMul(a, b, modulus, m))
            << "m=" << m << " a=" << a << " b=" << b;
      }
    }
    return;
  }

  // Sampled: structured elements plus pseudorandom pairs.
  std::vector<uint64_t> elems = StructuredElements(field);
  Xoshiro256 rng(0x5EED0000 + static_cast<uint64_t>(m));
  for (int i = 0; i < 64; ++i) {
    elems.push_back(rng.NextBounded(field.order()) + 1);
  }
  for (uint64_t a : elems) {
    for (uint64_t b : elems) {
      ASSERT_EQ(field.Mul(a, b), RefMul(a, b, modulus, m))
          << "m=" << m << " a=" << a << " b=" << b;
    }
  }
}

TEST_P(GF2mReferenceTest, SqrInvDivPowAgreeWithReference) {
  const int m = GetParam();
  const GF2m field(m);
  const uint64_t modulus = field.modulus();

  std::vector<uint64_t> elems;
  if (m <= 10) {
    for (uint64_t a = 1; a <= field.order(); ++a) elems.push_back(a);
  } else {
    elems = StructuredElements(field);
    Xoshiro256 rng(0xFACE0000 + static_cast<uint64_t>(m));
    for (int i = 0; i < 128; ++i) {
      elems.push_back(rng.NextBounded(field.order()) + 1);
    }
  }

  for (uint64_t a : elems) {
    // Squaring is reference multiplication by itself.
    ASSERT_EQ(field.Sqr(a), RefMul(a, a, modulus, m)) << "m=" << m
                                                      << " a=" << a;
    // Inverse: verified multiplicatively through the reference product.
    const uint64_t inv = field.Inv(a);
    ASSERT_NE(inv, 0u);
    ASSERT_EQ(RefMul(a, inv, modulus, m), 1u) << "m=" << m << " a=" << a;
    // Division against reference mul-by-inverse.
    const uint64_t b = elems[(a * 7) % elems.size()];
    ASSERT_EQ(field.Div(b, a), RefMul(b, inv, modulus, m))
        << "m=" << m << " a=" << a << " b=" << b;
    // Pow: cube via two reference multiplications.
    ASSERT_EQ(field.Pow(a, 3), RefMul(RefMul(a, a, modulus, m), a, modulus, m))
        << "m=" << m << " a=" << a;
  }
}

// The log-domain batch kernels (gf2m.h) must be element-for-element
// identical to per-element Mul loops -- on the table path and on the
// carry-less fallback alike, including zero operands (the batch kernels
// zero-skip in log space; the scalar loops branch in Mul).
TEST_P(GF2mReferenceTest, BatchKernelsMatchPerElementOps) {
  const int m = GetParam();
  const GF2m field(m);
  Xoshiro256 rng(0xBA7C0000 + static_cast<uint64_t>(m));
  constexpr size_t kSize = 40;

  std::vector<uint64_t> src(kSize), other(kSize);
  for (size_t i = 0; i < kSize; ++i) {
    // Sprinkle zeros to exercise the zero-skip paths.
    src[i] = i % 7 == 0 ? 0 : rng.NextBounded(field.order()) + 1;
    other[i] = i % 5 == 0 ? 0 : rng.NextBounded(field.order()) + 1;
  }
  const uint64_t c = rng.NextBounded(field.order()) + 1;

  // MulManyAccum / MulManyInto vs scalar loops (and c == 0 semantics).
  std::vector<uint64_t> accum(kSize, 0xAB), expected_accum(kSize, 0xAB);
  field.MulManyAccum(c, Span<const uint64_t>(src), Span<uint64_t>(accum));
  for (size_t i = 0; i < kSize; ++i) {
    expected_accum[i] ^= field.Mul(c, src[i]);
  }
  EXPECT_EQ(accum, expected_accum) << "m=" << m;
  std::vector<uint64_t> scaled(kSize), expected_scaled(kSize);
  field.MulManyInto(c, Span<const uint64_t>(src), Span<uint64_t>(scaled));
  for (size_t i = 0; i < kSize; ++i) {
    expected_scaled[i] = field.Mul(c, src[i]);
  }
  EXPECT_EQ(scaled, expected_scaled) << "m=" << m;
  std::vector<uint64_t> untouched(kSize, 7);
  field.MulManyAccum(0, Span<const uint64_t>(src), Span<uint64_t>(untouched));
  EXPECT_EQ(untouched, std::vector<uint64_t>(kSize, 7)) << "m=" << m;

  // Dot / DotRev vs scalar accumulation.
  uint64_t dot = 0, dot_rev = 0;
  for (size_t i = 0; i < kSize; ++i) {
    dot ^= field.Mul(src[i], other[i]);
    dot_rev ^= field.Mul(src[i], other[kSize - 1 - i]);
  }
  EXPECT_EQ(field.Dot(Span<const uint64_t>(src), Span<const uint64_t>(other)),
            dot)
      << "m=" << m;
  EXPECT_EQ(
      field.DotRev(Span<const uint64_t>(src), Span<const uint64_t>(other)),
      dot_rev)
      << "m=" << m;

  // PowTableInto vs repeated multiplication, including base 0.
  const uint64_t base = rng.NextBounded(field.order()) + 1;
  std::vector<uint64_t> powers(kSize), expected_powers(kSize);
  field.PowTableInto(base, Span<uint64_t>(powers));
  expected_powers[0] = 1;
  for (size_t i = 1; i < kSize; ++i) {
    expected_powers[i] = field.Mul(expected_powers[i - 1], base);
  }
  EXPECT_EQ(powers, expected_powers) << "m=" << m;
  field.PowTableInto(0, Span<uint64_t>(powers));
  expected_powers.assign(kSize, 0);
  expected_powers[0] = 1;
  EXPECT_EQ(powers, expected_powers) << "m=" << m;

  // OddPowerAccum vs the scalar odd-power walk.
  const uint64_t x = rng.NextBounded(field.order()) + 1;
  constexpr size_t kT = 16;
  std::vector<uint64_t> odd(kT, 0x11), expected_odd(kT, 0x11);
  field.OddPowerAccum(x, Span<uint64_t>(odd));
  uint64_t power = x;
  const uint64_t x2 = field.Sqr(x);
  for (size_t i = 0; i < kT; ++i) {
    expected_odd[i] ^= power;
    power = field.Mul(power, x2);
  }
  EXPECT_EQ(odd, expected_odd) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(AllSupportedDegrees, GF2mReferenceTest,
                         ::testing::Range(2, 64),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace pbs
