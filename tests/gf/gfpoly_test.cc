#include "pbs/gf/gfpoly.h"

#include <gtest/gtest.h>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

GFPoly RandomPoly(const GF2m& f, int degree, Xoshiro256* rng) {
  std::vector<uint64_t> coeffs(degree + 1);
  for (auto& c : coeffs) c = rng->NextBounded(f.order() + 1);
  coeffs[degree] = rng->NextBounded(f.order()) + 1;  // Nonzero leading.
  return GFPoly(f, std::move(coeffs));
}

TEST(GFPoly, ZeroAndOne) {
  GF2m f(8);
  EXPECT_TRUE(GFPoly::Zero(f).IsZero());
  EXPECT_EQ(GFPoly::Zero(f).degree(), -1);
  EXPECT_EQ(GFPoly::One(f).degree(), 0);
  EXPECT_EQ(GFPoly::One(f).coeff(0), 1u);
}

TEST(GFPoly, TrimsLeadingZeros) {
  GF2m f(8);
  GFPoly p(f, {1, 2, 0, 0});
  EXPECT_EQ(p.degree(), 1);
}

TEST(GFPoly, AddIsXorOfCoefficients) {
  GF2m f(8);
  GFPoly a(f, {1, 2, 3});
  GFPoly b(f, {4, 2, 3});
  GFPoly sum = a.Add(b);
  EXPECT_EQ(sum.degree(), 0);  // x^2 and x terms cancel.
  EXPECT_EQ(sum.coeff(0), 5u);
}

TEST(GFPoly, SelfAddIsZero) {
  GF2m f(10);
  Xoshiro256 rng(1);
  GFPoly p = RandomPoly(f, 7, &rng);
  EXPECT_TRUE(p.Add(p).IsZero());
}

TEST(GFPoly, MulDegreesAdd) {
  GF2m f(8);
  Xoshiro256 rng(2);
  GFPoly a = RandomPoly(f, 5, &rng);
  GFPoly b = RandomPoly(f, 3, &rng);
  EXPECT_EQ(a.Mul(b).degree(), 8);
}

TEST(GFPoly, MulByZeroAndOne) {
  GF2m f(8);
  Xoshiro256 rng(3);
  GFPoly p = RandomPoly(f, 4, &rng);
  EXPECT_TRUE(p.Mul(GFPoly::Zero(f)).IsZero());
  EXPECT_TRUE(p.Mul(GFPoly::One(f)) == p);
}

TEST(GFPoly, DivModReconstructs) {
  GF2m f(11);
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    GFPoly a = RandomPoly(f, 2 + static_cast<int>(rng.NextBounded(10)), &rng);
    GFPoly b = RandomPoly(f, 1 + static_cast<int>(rng.NextBounded(5)), &rng);
    auto [q, r] = a.DivMod(b);
    EXPECT_LT(r.degree(), b.degree());
    EXPECT_TRUE(q.Mul(b).Add(r) == a);
  }
}

TEST(GFPoly, GcdOfCoprimeIsOne) {
  GF2m f(8);
  // (x + 1) and (x + 2) are coprime.
  GFPoly a(f, {1, 1});
  GFPoly b(f, {2, 1});
  GFPoly g = a.Gcd(b);
  EXPECT_EQ(g.degree(), 0);
}

TEST(GFPoly, GcdFindsCommonFactor) {
  GF2m f(8);
  Xoshiro256 rng(5);
  GFPoly common(f, {3, 7, 1});  // Some quadratic.
  GFPoly a = common.Mul(RandomPoly(f, 3, &rng));
  GFPoly b = common.Mul(RandomPoly(f, 4, &rng));
  GFPoly g = a.Gcd(b);
  // gcd is a multiple of `common` (could be larger if the random cofactors
  // share factors): check common divides gcd.
  EXPECT_GE(g.degree(), 2);
  EXPECT_TRUE(g.Mod(common.MakeMonic()).IsZero());
}

TEST(GFPoly, DerivativeKillsEvenPowers) {
  GF2m f(8);
  // p = c4 x^4 + c3 x^3 + c2 x^2 + c1 x + c0 -> p' = c3 x^2 + c1.
  GFPoly p(f, {9, 8, 7, 6, 5});
  GFPoly d = p.Derivative();
  EXPECT_EQ(d.degree(), 2);
  EXPECT_EQ(d.coeff(0), 8u);
  EXPECT_EQ(d.coeff(1), 0u);
  EXPECT_EQ(d.coeff(2), 6u);
}

TEST(GFPoly, EvalMatchesManualExpansion) {
  GF2m f(8);
  GFPoly p(f, {5, 3, 1});  // x^2 + 3x + 5.
  for (uint64_t x = 0; x < 30; ++x) {
    const uint64_t expected =
        GF2m::Add(GF2m::Add(f.Mul(x, x), f.Mul(3, x)), 5);
    EXPECT_EQ(p.Eval(x), expected);
  }
}

TEST(GFPoly, EvalAtRootsOfProductVanishes) {
  GF2m f(10);
  // Build (x - r1)(x - r2)(x - r3); subtraction == addition.
  const uint64_t roots[] = {17, 923, 400};
  GFPoly p = GFPoly::One(f);
  for (uint64_t r : roots) p = p.Mul(GFPoly(f, {r, 1}));
  for (uint64_t r : roots) EXPECT_EQ(p.Eval(r), 0u);
  EXPECT_NE(p.Eval(5), 0u);
}

TEST(GFPoly, MakeMonicNormalizesLeading) {
  GF2m f(9);
  Xoshiro256 rng(6);
  GFPoly p = RandomPoly(f, 6, &rng);
  GFPoly monic = p.MakeMonic();
  EXPECT_EQ(monic.leading(), 1u);
  EXPECT_EQ(monic.degree(), p.degree());
}

TEST(GFPoly, MulModStaysBelowModulus) {
  GF2m f(8);
  Xoshiro256 rng(7);
  GFPoly modulus = RandomPoly(f, 5, &rng);
  for (int trial = 0; trial < 20; ++trial) {
    GFPoly a = RandomPoly(f, 4, &rng);
    GFPoly b = RandomPoly(f, 4, &rng);
    EXPECT_LT(a.MulMod(b, modulus).degree(), modulus.degree());
  }
}

TEST(GFPoly, ShiftUpMultipliesByPowerOfX) {
  GF2m f(8);
  GFPoly p(f, {1, 2});
  GFPoly shifted = p.ShiftUp(3);
  EXPECT_EQ(shifted.degree(), 4);
  EXPECT_EQ(shifted.coeff(3), 1u);
  EXPECT_EQ(shifted.coeff(4), 2u);
  EXPECT_EQ(shifted.coeff(0), 0u);
}

}  // namespace
}  // namespace pbs
