#include "pbs/gf/roots.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pbs/common/rng.h"

namespace pbs {
namespace {

// Builds prod_i (x + r_i) for distinct nonzero roots r_i.
GFPoly PolyWithRoots(const GF2m& f, const std::vector<uint64_t>& roots) {
  GFPoly p = GFPoly::One(f);
  for (uint64_t r : roots) p = p.Mul(GFPoly(f, {r, 1}));
  return p;
}

std::vector<uint64_t> DistinctNonzero(const GF2m& f, int count,
                                      Xoshiro256* rng) {
  std::set<uint64_t> s;
  while (static_cast<int>(s.size()) < count) {
    s.insert(rng->NextBounded(f.order()) + 1);
  }
  return {s.begin(), s.end()};
}

// Parameterized over (field degree, number of roots).
class RootsTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RootsTest, RecoversPlantedRoots) {
  const auto [m, count] = GetParam();
  GF2m f(m);
  Xoshiro256 rng(m * 1000 + count);
  auto roots = DistinctNonzero(f, count, &rng);
  auto found = FindDistinctNonzeroRoots(PolyWithRoots(f, roots), 777);
  ASSERT_TRUE(found.has_value());
  std::sort(found->begin(), found->end());
  EXPECT_EQ(*found, roots);
}

INSTANTIATE_TEST_SUITE_P(
    SmallFieldsChien, RootsTest,
    ::testing::Combine(::testing::Values(6, 7, 8, 10, 11),
                       ::testing::Values(1, 2, 5, 13, 17)));

INSTANTIATE_TEST_SUITE_P(
    LargeFieldsTrace, RootsTest,
    ::testing::Combine(::testing::Values(17, 24, 32, 48, 63),
                       ::testing::Values(1, 2, 5, 20, 64)));

TEST(Roots, ConstantPolynomialHasNoRoots) {
  GF2m f(8);
  auto found = FindDistinctNonzeroRoots(GFPoly(f, {7}), 1);
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(found->empty());
}

TEST(Roots, ZeroPolynomialFails) {
  GF2m f(8);
  EXPECT_FALSE(FindDistinctNonzeroRoots(GFPoly::Zero(f), 1).has_value());
}

TEST(Roots, RepeatedRootDetectedAsFailure) {
  GF2m f(32);
  // (x + 5)^2: not squarefree -> decode-failure signal.
  GFPoly p = PolyWithRoots(f, {5}).Mul(PolyWithRoots(f, {5}));
  EXPECT_FALSE(FindDistinctNonzeroRoots(p, 1).has_value());
}

TEST(Roots, RepeatedRootDetectedInSmallField) {
  GF2m f(8);
  GFPoly p = PolyWithRoots(f, {9}).Mul(PolyWithRoots(f, {9}));
  EXPECT_FALSE(FindDistinctNonzeroRoots(p, 1).has_value());
}

TEST(Roots, IrreducibleFactorDetectedAsFailure) {
  // A polynomial with an irreducible quadratic factor does not split into
  // linear factors; the decoder must notice (Section 3.2 exception).
  GF2m f(32);
  Xoshiro256 rng(12);
  // Find an irreducible quadratic by trial: x^2 + bx + c with no roots.
  for (int attempt = 0; attempt < 100; ++attempt) {
    const uint64_t bb = rng.NextBounded(f.order()) + 1;
    const uint64_t cc = rng.NextBounded(f.order()) + 1;
    GFPoly quad(f, {cc, bb, 1});
    // Tr(c/b^2) != 0 <=> irreducible; just test behaviorally instead.
    GFPoly with_linear = quad.Mul(PolyWithRoots(f, {3}));
    auto found = FindDistinctNonzeroRoots(with_linear, 99);
    if (!found.has_value()) {
      SUCCEED();
      return;
    }
    // quad happened to be reducible; try again.
  }
  FAIL() << "never sampled an irreducible quadratic in 100 tries";
}

TEST(Roots, ZeroRootRejected) {
  GF2m f(8);
  // x * (x + 3) has a root at zero -- invalid for error locators.
  GFPoly p = GFPoly(f, {0, 1}).Mul(GFPoly(f, {3, 1}));
  EXPECT_FALSE(FindDistinctNonzeroRoots(p, 1).has_value());
}

// The incremental Chien kernel must find exactly the root *set* of the
// Horner reference for every table-backed field, over polynomials with
// random (possibly zero) coefficients. It reports roots in generator
// order rather than ascending order, so the comparison sorts both.
TEST(ChienDifferential, IncrementalMatchesHornerForAllTableFields) {
  Workspace ws;
  for (int m = 2; m <= 16; ++m) {
    GF2m f(m);
    Xoshiro256 rng(static_cast<uint64_t>(m) * 7919);
    const int trials = m <= 10 ? 24 : 6;
    for (int trial = 0; trial < trials; ++trial) {
      const int degree =
          1 + static_cast<int>(rng.NextBounded(
                  std::min<uint64_t>(10, f.order() - 1)));
      std::vector<uint64_t> coeffs(degree + 1);
      for (int j = 0; j < degree; ++j) {
        coeffs[j] = rng.NextBounded(f.order() + 1);  // Zeros allowed.
      }
      coeffs[degree] = rng.NextBounded(f.order()) + 1;  // Nonzero leading.

      std::vector<uint64_t> horner(degree);
      const int horner_count = ChienSearchInto(
          f, Span<const uint64_t>(coeffs), Span<uint64_t>(horner));
      std::vector<uint64_t> incremental(degree);
      const int inc_count = ChienSearchIncremental(
          f, Span<const uint64_t>(coeffs), ws, Span<uint64_t>(incremental));

      ASSERT_EQ(inc_count, horner_count)
          << "m=" << m << " trial=" << trial << " degree=" << degree;
      horner.resize(horner_count);
      incremental.resize(inc_count);
      std::sort(horner.begin(), horner.end());
      std::sort(incremental.begin(), incremental.end());
      EXPECT_EQ(incremental, horner) << "m=" << m << " trial=" << trial;
    }
  }
}

// Polynomials whose roots the incremental kernel must special-case:
// planted full root sets (early exit on the last root), degree-1
// locators (solved directly), and constants.
TEST(ChienDifferential, PlantedRootsAndDegenerateShapes) {
  Workspace ws;
  GF2m f(9);
  Xoshiro256 rng(0xC41E);
  for (int count : {1, 2, 7, 20}) {
    auto roots = DistinctNonzero(f, count, &rng);
    const GFPoly p = PolyWithRoots(f, roots);
    std::vector<uint64_t> found(count);
    const int n = ChienSearchIncremental(
        f, Span<const uint64_t>(p.coeffs()), ws, Span<uint64_t>(found));
    ASSERT_EQ(n, count);
    std::sort(found.begin(), found.end());
    EXPECT_EQ(found, roots);
  }
  // Degree 1 with zero constant term: only root is x = 0, outside the
  // scanned domain -- both kernels must report none.
  std::vector<uint64_t> linear = {0, 5};
  std::vector<uint64_t> out(1);
  EXPECT_EQ(ChienSearchIncremental(f, Span<const uint64_t>(linear), ws,
                                   Span<uint64_t>(out)),
            0);
  EXPECT_EQ(ChienSearchInto(f, Span<const uint64_t>(linear),
                            Span<uint64_t>(out)),
            0);
  // Constants and the zero polynomial report no roots.
  std::vector<uint64_t> constant = {3};
  EXPECT_EQ(ChienSearchIncremental(f, Span<const uint64_t>(constant), ws,
                                   Span<uint64_t>(out)),
            0);
  std::vector<uint64_t> zero = {0};
  EXPECT_EQ(ChienSearchIncremental(f, Span<const uint64_t>(zero), ws,
                                   Span<uint64_t>(out)),
            0);
}

TEST(Roots, ChienSearchFindsAllRootsExhaustively) {
  GF2m f(6);
  auto p = PolyWithRoots(f, {1, 33, 62});
  auto roots = ChienSearch(p);
  std::sort(roots.begin(), roots.end());
  EXPECT_EQ(roots, (std::vector<uint64_t>{1, 33, 62}));
}

TEST(Roots, TraceSplitDeterministicGivenSeed) {
  GF2m f(32);
  Xoshiro256 rng(55);
  auto roots = DistinctNonzero(f, 10, &rng);
  GFPoly p = PolyWithRoots(f, roots);
  auto r1 = FindDistinctNonzeroRoots(p, 42);
  auto r2 = FindDistinctNonzeroRoots(p, 42);
  ASSERT_TRUE(r1.has_value() && r2.has_value());
  EXPECT_EQ(*r1, *r2);
}

TEST(Roots, FullDegreeNearFieldSizeSmallField) {
  // Degenerate: every nonzero element of GF(2^3)* is a root of x^7 + 1.
  GF2m f(3);
  std::vector<uint64_t> all;
  for (uint64_t v = 1; v <= f.order(); ++v) all.push_back(v);
  auto found = FindDistinctNonzeroRoots(PolyWithRoots(f, all), 5);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->size(), all.size());
}

}  // namespace
}  // namespace pbs
