// Differential tests for the cross-group batch Chien search: the batched
// kernel (AVX2 lanes where available) must be bit-identical -- same root
// counts, same roots, same (generator) order -- to per-polynomial
// ChienSearchIncremental and to ChienSearchBatchPortable, across every
// Chien-sized field, randomized polynomial mixes, and ragged batch sizes
// below the lane width.

#include "pbs/gf/roots.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "pbs/common/rng.h"
#include "pbs/gf/gfpoly.h"

namespace pbs {
namespace {

// Builds prod_i (x + r_i) for distinct nonzero roots r_i: a polynomial
// guaranteed to have exactly deg distinct roots.
std::vector<uint64_t> PolyWithPlantedRoots(const GF2m& f, int count,
                                           Xoshiro256* rng) {
  std::set<uint64_t> roots;
  while (static_cast<int>(roots.size()) < count) {
    roots.insert(rng->NextBounded(f.order()) + 1);
  }
  GFPoly p = GFPoly::One(f);
  for (uint64_t r : roots) p = p.Mul(GFPoly(f, {r, 1}));
  return p.coeffs();
}

// Uniformly random coefficients (typically few or no roots); the leading
// coefficient is forced nonzero for degree >= 0.
std::vector<uint64_t> RandomPoly(const GF2m& f, int degree, Xoshiro256* rng) {
  if (degree < 0) return {0, 0, 0};  // The zero polynomial (padded).
  std::vector<uint64_t> coeffs(degree + 1);
  for (int i = 0; i < degree; ++i) coeffs[i] = rng->NextBounded(f.order() + 1);
  coeffs[degree] = rng->NextBounded(f.order()) + 1;
  return coeffs;
}

TEST(ChienBatchDiff, MatchesIncrementalAcrossFieldsAndRaggedBatches) {
  Xoshiro256 rng(0xC41EB47C);
  for (int m = 2; m <= 16; ++m) {
    const GF2m field(m);
    const int max_deg =
        static_cast<int>(std::min<uint64_t>(16, field.order() - 1));
    Workspace ws_batch, ws_portable, ws_serial;
    for (int iter = 0; iter < 10; ++iter) {
      // Randomized batch size, including ragged tails below the lane
      // width and multi-quad batches.
      const int n_polys = 1 + static_cast<int>(rng.NextBounded(11));
      std::vector<std::vector<uint64_t>> coeffs(n_polys);
      std::vector<std::vector<uint64_t>> out_batch(n_polys);
      std::vector<std::vector<uint64_t>> out_portable(n_polys);
      std::vector<std::vector<uint64_t>> out_serial(n_polys);
      std::vector<ChienBatchPoly> polys(n_polys);
      std::vector<ChienBatchPoly> polys_portable(n_polys);
      for (int p = 0; p < n_polys; ++p) {
        const int degree = static_cast<int>(rng.NextBounded(max_deg + 2)) - 1;
        // Half planted full-root locators (the decode shape), half random
        // coefficients (few roots, exercising full scans and early exits).
        if (degree >= 1 && rng.Next() % 2 == 0) {
          coeffs[p] = PolyWithPlantedRoots(field, degree, &rng);
        } else {
          coeffs[p] = RandomPoly(field, degree, &rng);
        }
        const size_t slots =
            static_cast<size_t>(std::max(PolyDegree(coeffs[p]), 1));
        out_batch[p].assign(slots, 0);
        out_portable[p].assign(slots, 0);
        out_serial[p].assign(slots, 0);
        polys[p] = ChienBatchPoly{coeffs[p], out_batch[p], 0};
        polys_portable[p] = ChienBatchPoly{coeffs[p], out_portable[p], 0};
      }

      ChienSearchBatch(field, Span<ChienBatchPoly>(polys.data(), n_polys),
                       ws_batch);
      ChienSearchBatchPortable(
          field, Span<ChienBatchPoly>(polys_portable.data(), n_polys),
          ws_portable);

      for (int p = 0; p < n_polys; ++p) {
        const int expected = ChienSearchIncremental(
            field, coeffs[p], ws_serial, out_serial[p]);
        ASSERT_EQ(polys[p].count, expected)
            << "m=" << m << " iter=" << iter << " poly=" << p;
        ASSERT_EQ(polys_portable[p].count, expected)
            << "m=" << m << " iter=" << iter << " poly=" << p;
        for (int r = 0; r < expected; ++r) {
          ASSERT_EQ(out_batch[p][r], out_serial[p][r])
              << "m=" << m << " iter=" << iter << " poly=" << p
              << " root=" << r;
          ASSERT_EQ(out_portable[p][r], out_serial[p][r])
              << "m=" << m << " iter=" << iter << " poly=" << p
              << " root=" << r;
        }
      }
    }
  }
}

TEST(ChienBatchDiff, EmptyBatchIsANoOp) {
  const GF2m field(8);
  Workspace ws;
  ChienSearchBatch(field, Span<ChienBatchPoly>(nullptr, 0), ws);
}

TEST(ChienBatchDiff, FullCapacityLocatorsAcrossEightGroups) {
  // The PbsBob shape the tentpole targets: eight groups, each with a
  // full-capacity degree-t locator of planted distinct roots.
  const GF2m field(11);  // n = 2047.
  const int t = 16;
  Xoshiro256 rng(0x8713AA);
  Workspace ws, ws_serial;
  std::vector<std::vector<uint64_t>> coeffs(8);
  std::vector<std::vector<uint64_t>> out(8), expected(8);
  std::vector<ChienBatchPoly> polys(8);
  for (int p = 0; p < 8; ++p) {
    coeffs[p] = PolyWithPlantedRoots(field, t, &rng);
    out[p].assign(t, 0);
    expected[p].assign(t, 0);
    polys[p] = ChienBatchPoly{coeffs[p], out[p], 0};
  }
  ChienSearchBatch(field, Span<ChienBatchPoly>(polys.data(), 8), ws);
  for (int p = 0; p < 8; ++p) {
    ASSERT_EQ(polys[p].count,
              ChienSearchIncremental(field, coeffs[p], ws_serial, expected[p]));
    ASSERT_EQ(polys[p].count, t);
    for (int r = 0; r < t; ++r) EXPECT_EQ(out[p][r], expected[p][r]);
  }
}

}  // namespace
}  // namespace pbs
