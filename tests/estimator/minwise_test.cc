#include "pbs/estimator/minwise.h"

#include <gtest/gtest.h>

#include "pbs/sim/workload.h"

namespace pbs {
namespace {

TEST(MinwiseEstimator, IdenticalSetsEstimateZero) {
  MinwiseEstimator a(64, 5), b(64, 5);
  std::vector<uint64_t> set = {5, 10, 15, 20, 25};
  a.AddAll(set);
  b.AddAll(set);
  EXPECT_EQ(MinwiseEstimator::Estimate(a, set.size(), b, set.size()), 0.0);
}

TEST(MinwiseEstimator, DisjointSetsEstimateFullSize) {
  MinwiseEstimator a(256, 5), b(256, 5);
  std::vector<uint64_t> sa, sb;
  for (uint64_t i = 1; i <= 500; ++i) sa.push_back(i);
  for (uint64_t i = 1001; i <= 1500; ++i) sb.push_back(i);
  a.AddAll(sa);
  b.AddAll(sb);
  const double est = MinwiseEstimator::Estimate(a, 500, b, 500);
  EXPECT_NEAR(est, 1000.0, 150.0);
}

TEST(MinwiseEstimator, RoughAccuracyOnOverlappingSets) {
  const size_t d = 400;
  SetPair pair = GenerateSetPair(2000, d, 32, 17);
  MinwiseEstimator a(512, 3), b(512, 3);
  a.AddAll(pair.a);
  b.AddAll(pair.b);
  const double est =
      MinwiseEstimator::Estimate(a, pair.a.size(), b, pair.b.size());
  EXPECT_GT(est, d * 0.4);
  EXPECT_LT(est, d * 2.5);
}

TEST(MinwiseEstimator, SpaceAccounting) {
  EXPECT_EQ(MinwiseEstimator::BitSize(128, 32), 4096u);
}

TEST(MinwiseEstimator, InsensitiveToInsertionOrder) {
  MinwiseEstimator a(64, 9), b(64, 9);
  a.Add(1); a.Add(2); a.Add(3);
  b.Add(3); b.Add(1); b.Add(2);
  EXPECT_EQ(a.minima(), b.minima());
}

}  // namespace
}  // namespace pbs
