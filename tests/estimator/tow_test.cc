#include "pbs/estimator/tow.h"

#include <gtest/gtest.h>

#include <cmath>

#include "pbs/common/rng.h"
#include "pbs/sim/workload.h"

namespace pbs {
namespace {

TEST(TowSketch, IdenticalSetsEstimateZero) {
  TowSketch a(16, 42), b(16, 42);
  std::vector<uint64_t> set = {1, 2, 3, 4, 5};
  a.AddAll(set);
  b.AddAll(set);
  EXPECT_EQ(TowSketch::Estimate(a, b), 0.0);
}

TEST(TowSketch, AddAllMatchesAdd) {
  TowSketch a(32, 7), b(32, 7);
  std::vector<uint64_t> set = {10, 20, 30};
  a.AddAll(set);
  for (uint64_t e : set) b.Add(e);
  EXPECT_EQ(a.counters(), b.counters());
}

TEST(TowSketch, UnbiasedOverManySeeds) {
  // E[d-hat] = d (Appendix A): average the single-sketch estimator over
  // many independent hash draws.
  constexpr int kD = 40;
  constexpr int kTrials = 3000;
  SplitMix64 seeds(3);
  double sum = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<uint64_t> diff;
    for (int i = 0; i < kD; ++i) diff.push_back(1000 + i);
    sum += TowEstimateFromDifference(diff, 1, seeds.Next());
  }
  const double mean = sum / kTrials;
  // Var of single sketch = 2d^2-2d; stderr = sqrt(var/kTrials) ~ 1.02.
  EXPECT_NEAR(mean, kD, 5 * std::sqrt((2.0 * kD * kD - 2 * kD) / kTrials));
}

TEST(TowSketch, VarianceMatchesTheory) {
  // Var[(Y_A - Y_B)^2] = 2d^2 - 2d for a single sketch (Appendix A).
  constexpr int kD = 30;
  constexpr int kTrials = 4000;
  SplitMix64 seeds(11);
  std::vector<uint64_t> diff;
  for (int i = 0; i < kD; ++i) diff.push_back(5000 + 17 * i);
  double sum = 0, sum_sq = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const double est = TowEstimateFromDifference(diff, 1, seeds.Next());
    sum += est;
    sum_sq += est * est;
  }
  const double mean = sum / kTrials;
  const double var = sum_sq / kTrials - mean * mean;
  const double theory = 2.0 * kD * kD - 2.0 * kD;
  EXPECT_NEAR(var, theory, 0.25 * theory);
}

TEST(TowSketch, MoreSketchesReduceVariance) {
  constexpr int kD = 50;
  SplitMix64 seeds(13);
  std::vector<uint64_t> diff;
  for (int i = 0; i < kD; ++i) diff.push_back(999 + i * 3);
  auto spread = [&](int ell) {
    double sum = 0, sum_sq = 0;
    constexpr int kTrials = 300;
    SplitMix64 local(seeds.Next());
    for (int t = 0; t < kTrials; ++t) {
      const double est = TowEstimateFromDifference(diff, ell, local.Next());
      sum += est;
      sum_sq += est * est;
    }
    const double mean = sum / kTrials;
    return sum_sq / kTrials - mean * mean;
  };
  EXPECT_GT(spread(1), 4 * spread(32));
}

TEST(TowSketch, DifferenceShortcutMatchesSubsetWorkloadExactly) {
  // For the paper's B-subset-of-A workload, Y(A) - Y(B) = Y(A \ B), so the
  // runner's shortcut equals the two-sided estimate bit-for-bit. (For
  // two-sided differences the B-side signs flip, which leaves the squared
  // estimator identically *distributed* but not identical per-instance.)
  const uint64_t seed = 99;
  SetPair pair = GenerateSetPair(800, 11, 32, 5);
  TowSketch a(64, seed), b(64, seed);
  a.AddAll(pair.a);
  b.AddAll(pair.b);
  const double full = TowSketch::Estimate(a, b);
  const double shortcut = TowEstimateFromDifference(pair.truth_diff, 64, seed);
  EXPECT_DOUBLE_EQ(full, shortcut);
}

TEST(TowSketch, SerializeRoundTrips) {
  TowSketch a(32, 5);
  std::vector<uint64_t> set;
  Xoshiro256 rng(2);
  for (int i = 0; i < 200; ++i) set.push_back(rng.Next() | 1);
  a.AddAll(set);
  BitWriter w;
  a.Serialize(&w, set.size());
  BitReader r(w.bytes());
  TowSketch back = TowSketch::Deserialize(&r, 32, 5, set.size());
  EXPECT_EQ(back.counters(), a.counters());
}

TEST(TowSketch, PaperWireSize) {
  // ell = 128 sketches over |S| = 10^6: 128 * 21 bits = 336 bytes.
  EXPECT_EQ(TowSketch::BitSize(128, 1000000) / 8, 336);
}

TEST(TowSketch, GammaCoverageAtEll128) {
  // Pr[d <= 1.38 * d-hat] >= 0.99 (Section 6.2). Monte-Carlo re-validation
  // with a modest trial count.
  constexpr int kD = 200;
  constexpr int kTrials = 400;
  SplitMix64 seeds(77);
  std::vector<uint64_t> diff;
  for (int i = 0; i < kD; ++i) diff.push_back(31 * (i + 1));
  int covered = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const double d_hat = TowEstimateFromDifference(diff, 128, seeds.Next());
    if (kD <= kTowGamma * d_hat) ++covered;
  }
  EXPECT_GE(static_cast<double>(covered) / kTrials, 0.97);
}

TEST(TowSketch, EstimateExchangeMatchesManualSketches) {
  std::vector<uint64_t> a, b;
  for (uint64_t i = 1; i <= 600; ++i) a.push_back(i * 3);
  for (uint64_t i = 1; i <= 600; ++i) {
    if (i % 10 != 0) b.push_back(i * 3);  // 60 A-only elements.
  }
  const TowExchange exchange = TowEstimateExchange(a, b, 128, 0xE57);

  TowSketch sa(128, 0xE57), sb(128, 0xE57);
  sa.AddAll(a);
  sb.AddAll(b);
  EXPECT_DOUBLE_EQ(exchange.d_hat, TowSketch::Estimate(sa, sb));
  EXPECT_EQ(exchange.bytes,
            (static_cast<size_t>(TowSketch::BitSize(128, b.size())) + 7) / 8);
  EXPECT_GT(exchange.bytes, 0u);
  // The estimate should land in the right ballpark of the true d = 60.
  EXPECT_GT(exchange.d_hat, 10.0);
  EXPECT_LT(exchange.d_hat, 300.0);
}

}  // namespace
}  // namespace pbs
