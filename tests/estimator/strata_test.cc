#include "pbs/estimator/strata.h"

#include <gtest/gtest.h>

#include "pbs/common/rng.h"
#include "pbs/sim/workload.h"

namespace pbs {
namespace {

TEST(StrataEstimator, IdenticalSetsEstimateZero) {
  StrataEstimator a(16, 40, 7, 32), b(16, 40, 7, 32);
  std::vector<uint64_t> set;
  Xoshiro256 rng(1);
  for (int i = 0; i < 500; ++i) set.push_back(rng.Next() | 1);
  a.AddAll(set);
  b.AddAll(set);
  EXPECT_EQ(StrataEstimator::Estimate(a, b), 0.0);
}

TEST(StrataEstimator, SmallDifferenceExact) {
  // With d well below the per-stratum capacity every stratum decodes and
  // the estimate is exact.
  SetPair pair = GenerateSetPair(2000, 20, 32, 3);
  StrataEstimator a(kStrataDefaultLevels, kStrataDefaultCells, 9, 32);
  StrataEstimator b(kStrataDefaultLevels, kStrataDefaultCells, 9, 32);
  a.AddAll(pair.a);
  b.AddAll(pair.b);
  EXPECT_EQ(StrataEstimator::Estimate(a, b), 20.0);
}

class StrataAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(StrataAccuracy, WithinFactorTwoTypically) {
  const int d = GetParam();
  int within = 0;
  constexpr int kTrials = 20;
  for (int trial = 0; trial < kTrials; ++trial) {
    SetPair pair = GenerateSetPair(4 * d + 1000, d, 32, 100 + trial);
    StrataEstimator a(kStrataDefaultLevels, kStrataDefaultCells, trial, 32);
    StrataEstimator b(kStrataDefaultLevels, kStrataDefaultCells, trial, 32);
    a.AddAll(pair.a);
    b.AddAll(pair.b);
    const double est = StrataEstimator::Estimate(a, b);
    if (est >= d / 2.0 && est <= d * 2.0) ++within;
  }
  EXPECT_GE(within, kTrials * 7 / 10) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Sizes, StrataAccuracy,
                         ::testing::Values(100, 1000, 5000));

TEST(StrataEstimator, WireSizeMuchLargerThanTow) {
  // The Appendix-B point: Strata costs tens of KB; ToW costs ~336 bytes.
  StrataEstimator s(kStrataDefaultLevels, kStrataDefaultCells, 1, 32);
  EXPECT_GT(s.bit_size() / 8, 10000u);
}

}  // namespace
}  // namespace pbs
